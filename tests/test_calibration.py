"""Tests for link-model calibration from measured bandwidth points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.calibration import (
    BandwidthPoint,
    CalibrationError,
    fit_link,
    fit_link_from_pairs,
    paper_fig3a_points,
    residuals,
)
from repro.hardware.specs import GB, MB, NVLINK3_P2P, LinkSpec


def test_fit_recovers_known_link_exactly():
    """Sampling a synthetic link and fitting must return the same link."""
    truth = LinkSpec(name="truth", peak_bandwidth=250 * GB, latency=12e-6)
    points = [
        BandwidthPoint(n, truth.effective_bandwidth(n))
        for n in (64 * 1024, MB, 16 * MB, 256 * MB)
    ]
    fitted = fit_link(points)
    assert fitted.peak_bandwidth == pytest.approx(truth.peak_bandwidth, rel=1e-6)
    assert fitted.latency == pytest.approx(truth.latency, rel=1e-6)


def test_fit_paper_points_matches_preset():
    """Fitting the paper's two Fig. 3a anchors reproduces the NVLink preset."""
    fitted = fit_link(paper_fig3a_points(), name="a100-nvlink")
    assert fitted.peak_bandwidth == pytest.approx(NVLINK3_P2P.peak_bandwidth, rel=0.05)
    assert fitted.latency == pytest.approx(NVLINK3_P2P.latency, rel=0.25)


def test_fit_from_pairs():
    fitted = fit_link_from_pairs([(2 * MB, 100 * GB), (GB, 247 * GB)])
    assert 200 * GB < fitted.peak_bandwidth < 300 * GB


def test_residuals_zero_on_perfect_fit():
    points = paper_fig3a_points()
    fitted = fit_link(points)
    for r in residuals(fitted, points):
        assert abs(r) < 1e-6


def test_fit_needs_two_distinct_sizes():
    with pytest.raises(CalibrationError):
        fit_link([BandwidthPoint(MB, GB)])
    with pytest.raises(CalibrationError):
        fit_link([BandwidthPoint(MB, GB), BandwidthPoint(MB, 2 * GB)])


def test_invalid_measurements_rejected():
    with pytest.raises(CalibrationError):
        BandwidthPoint(0, GB)
    with pytest.raises(CalibrationError):
        BandwidthPoint(MB, -1)


def test_inconsistent_measurements_rejected():
    """Transfer *time* decreasing with size cannot fit the model."""
    with pytest.raises(CalibrationError):
        fit_link(
            [
                BandwidthPoint(100 * MB, 1 * GB),  # t = 0.1 s
                BandwidthPoint(200 * MB, 100 * GB),  # t = 0.002 s
            ]
        )


@given(
    peak=st.floats(min_value=1e9, max_value=1e12),
    latency=st.floats(min_value=0, max_value=1e-3),
)
@settings(max_examples=50, deadline=None)
def test_fit_roundtrip_property(peak, latency):
    """Property: fit(sample(link)) == link for any valid link."""
    truth = LinkSpec(name="t", peak_bandwidth=peak, latency=latency)
    points = [
        BandwidthPoint(n, truth.effective_bandwidth(n))
        for n in (10_000, 1_000_000, 50_000_000)
    ]
    fitted = fit_link(points)
    assert fitted.peak_bandwidth == pytest.approx(peak, rel=1e-4)
    assert fitted.latency == pytest.approx(latency, rel=1e-3, abs=1e-9)
