"""Tests for the fault-injection subsystem (`repro.faults`).

Covers the schedule format, the backoff policy, the hardware health
primitives, the DMA error family, the injector's apply/clear/cancel
lifecycle, and the coordinator's health bookkeeping.
"""

import json

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.harness import build_consumer_rig
from repro.faults import (
    DmaStall,
    FaultInjector,
    FaultSchedule,
    GpuFailure,
    LinkDegradation,
    RetryPolicy,
)
from repro.hardware import GpuFailedError, Server, TransferError, TransferStalled
from repro.models import LLAMA2_13B, MISTRAL_7B, OPT_30B
from repro.serving import Request, VLLMEngine
from repro.sim import Environment


# ---------------------------------------------------------------------------
# FaultSchedule
# ---------------------------------------------------------------------------
def default_faults():
    return [
        DmaStall(at=20.0, channel="nvlink:gpu1->gpu0", duration=4.0),
        LinkDegradation(at=40.0, channel="nvlink", factor=0.02, duration=25.0),
        GpuFailure(at=90.0, gpu="gpu1", duration=20.0),
    ]


def test_schedule_sorts_and_reports_horizon():
    schedule = FaultSchedule(reversed(default_faults()))
    assert [f.kind for f in schedule] == [
        "dma-stall", "link-degradation", "gpu-failure"
    ]
    assert len(schedule) == 3
    assert schedule.horizon == 110.0
    assert FaultSchedule().horizon == 0.0


def test_schedule_json_roundtrip(tmp_path):
    schedule = FaultSchedule(default_faults())
    assert FaultSchedule.from_json(schedule.to_json()) == schedule
    path = tmp_path / "schedule.json"
    path.write_text(schedule.to_json())
    assert FaultSchedule.from_file(path) == schedule
    # The on-disk format is the documented list-of-dicts shape.
    entries = json.loads(schedule.to_json())
    assert [e["kind"] for e in entries] == [
        "dma-stall", "link-degradation", "gpu-failure"
    ]


def test_schedule_rejects_bad_json():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSchedule.from_dicts([{"kind": "meteor-strike", "at": 1.0}])
    with pytest.raises(ValueError, match="must contain a list"):
        FaultSchedule.from_json('{"kind": "dma-stall"}')


def test_fault_validation():
    with pytest.raises(ValueError, match="time must be >= 0"):
        DmaStall(at=-1.0, channel="nvlink", duration=1.0)
    with pytest.raises(ValueError, match="duration must be positive"):
        GpuFailure(at=0.0, gpu="gpu1", duration=0.0)
    with pytest.raises(ValueError, match=r"factor must be in \(0, 1\]"):
        LinkDegradation(at=0.0, channel="nvlink", factor=0.0, duration=1.0)
    with pytest.raises(ValueError, match=r"factor must be in \(0, 1\]"):
        LinkDegradation(at=0.0, channel="nvlink", factor=1.5, duration=1.0)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def test_retry_policy_caps_and_counts():
    policy = RetryPolicy(initial_delay=0.05, multiplier=2.0, max_delay=1.0,
                         max_attempts=8)
    delays = list(policy.delays())
    assert len(delays) == 7  # no delay after the final attempt
    assert delays[:5] == [0.05, 0.1, 0.2, 0.4, 0.8]
    assert delays[5:] == [1.0, 1.0]  # capped


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(initial_delay=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(initial_delay=2.0, max_delay=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# ---------------------------------------------------------------------------
# Hardware health primitives
# ---------------------------------------------------------------------------
def test_channel_degrade_restore():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    channel = server.interconnect.channels["server0:nvlink:gpu0->gpu1"]
    assert channel.healthy
    channel.degrade(0.25)
    assert not channel.healthy
    assert channel.effective_bandwidth == pytest.approx(
        0.25 * channel.spec.peak_bandwidth
    )
    # The route's bottleneck reads the degraded value live.
    route = server.interconnect.route(server.gpus[0], server.gpus[1])
    assert route.bottleneck_bandwidth == pytest.approx(channel.effective_bandwidth)
    assert not route.healthy
    channel.restore()
    assert channel.healthy and route.healthy
    with pytest.raises(ValueError):
        channel.degrade(0.0)
    with pytest.raises(ValueError):
        channel.degrade(1.5)


def test_gpu_fail_recover():
    env = Environment()
    server = Server(env, n_gpus=2)
    gpu = server.gpus[1]
    assert not gpu.failed
    gpu.fail()
    assert gpu.failed
    gpu.recover()
    assert not gpu.failed


def _run_transfer(env, server, src, dst):
    """Run one transfer to completion, returning the raised fault (or None)."""
    box = {}

    def proc(env):
        try:
            yield from server.transfer(src, dst, 2**20)
        except TransferError as exc:
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("error")


def test_stalled_channel_rejects_transfers():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    channel = server.interconnect.channels["server0:nvlink:gpu0->gpu1"]
    channel.stall()
    error = _run_transfer(env, server, server.gpus[0], server.gpus[1])
    assert isinstance(error, TransferStalled)
    assert channel.name in str(error)
    channel.unstall()
    assert _run_transfer(env, server, server.gpus[0], server.gpus[1]) is None


def test_failed_gpu_rejects_transfers():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    server.gpus[1].fail()
    error = _run_transfer(env, server, server.gpus[0], server.gpus[1])
    assert isinstance(error, GpuFailedError)
    # The PCIe path of the healthy GPU is unaffected.
    assert _run_transfer(env, server, server.gpus[0], server.dram) is None


# ---------------------------------------------------------------------------
# FaultInjector lifecycle
# ---------------------------------------------------------------------------
def test_injector_applies_and_clears_on_schedule():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    injector = FaultInjector(server)
    injector.install(
        FaultSchedule([
            LinkDegradation(at=1.0, channel="nvlink", factor=0.5, duration=2.0),
            GpuFailure(at=2.0, gpu="gpu1", duration=3.0),
        ])
    )
    nvlinks = [
        ch for name, ch in server.interconnect.channels.items() if "nvlink" in name
    ]
    env.run(until=1.5)
    assert all(ch.degradation == 0.5 for ch in nvlinks)
    env.run(until=2.5)
    assert server.gpus[1].failed
    env.run(until=3.5)  # degradation cleared at t=3
    assert all(ch.healthy for ch in nvlinks)
    assert server.gpus[1].failed
    env.run(until=6.0)  # GPU back at t=5
    assert not server.gpus[1].failed
    events = [entry["event"] for entry in injector.log]
    assert events == [
        "link-degradation:apply", "gpu-failure:apply",
        "link-degradation:clear", "gpu-failure:clear",
    ]


def test_injector_cancel_clears_active_faults():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    injector = FaultInjector(server)
    injector.install(
        FaultSchedule([DmaStall(at=1.0, channel="nvlink", duration=100.0)])
    )
    env.run(until=2.0)
    assert any(ch.stalled for ch in server.interconnect.channels.values())
    injector.cancel()
    env.run(until=3.0)  # interrupts are delivered asynchronously
    assert all(not ch.stalled for ch in server.interconnect.channels.values())


def test_injector_rejects_unknown_targets_at_install():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    injector = FaultInjector(server)
    with pytest.raises(ValueError, match="no channel matches"):
        injector.install(
            FaultSchedule([DmaStall(at=0.0, channel="infiniband", duration=1.0)])
        )
    with pytest.raises(ValueError, match="no GPU matches"):
        injector.install(
            FaultSchedule([GpuFailure(at=0.0, gpu="gpu9", duration=1.0)])
        )


# ---------------------------------------------------------------------------
# Coordinator health bookkeeping
# ---------------------------------------------------------------------------
def test_coordinator_quarantines_failed_gpu():
    coord = Coordinator()
    ok = coord.request("POST", "/lease", {"producer": "p0", "nbytes": 100})
    assert ok.ok
    coord.request("POST", "/gpu_failed", {"gpu": "p0"})
    refused = coord.request("POST", "/lease", {"producer": "p0", "nbytes": 100})
    assert refused.status == 409
    health = coord.request("GET", "/health").body
    assert health["failed_gpus"] == ["p0"]
    # The existing lease survives the failure but accepts nothing new.
    assert not coord.leases["p0"].accepting
    coord.request("POST", "/gpu_recovered", {"gpu": "p0"})
    assert coord.request("GET", "/health").body["failed_gpus"] == []
    assert coord.request("POST", "/lease", {"producer": "p0", "nbytes": 100}).ok


def test_complete_offer_returns_zero_when_quarantined():
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    producer = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
    coord.request("POST", "/gpu_failed", {"gpu": producer.name})
    held_before = server.gpus[1].hbm.used
    assert producer.complete_offer(2**30) == 0
    assert server.gpus[1].hbm.used == held_before  # nothing stranded
    coord.request("POST", "/gpu_recovered", {"gpu": producer.name})
    assert producer.complete_offer(2**30) == 2**30


def test_injector_reports_link_health_to_coordinator():
    rig = build_consumer_rig(
        "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True
    )
    injector = FaultInjector(rig.server, coordinator=rig.coordinator)
    injector.install(
        FaultSchedule([
            LinkDegradation(at=1.0, channel="nvlink", factor=0.02, duration=2.0)
        ])
    )
    consumer = rig.consumer_lib.name
    rig.env.run(until=1.5)
    assert consumer in rig.coordinator.degraded_consumers
    rig.env.run(until=4.0)
    assert consumer not in rig.coordinator.degraded_consumers


def test_mild_degradation_keeps_fast_path():
    """NVLink at 50% is still far faster than PCIe: no failover."""
    rig = build_consumer_rig(
        "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True
    )
    injector = FaultInjector(rig.server, coordinator=rig.coordinator)
    injector.install(
        FaultSchedule([
            LinkDegradation(at=1.0, channel="nvlink", factor=0.5, duration=2.0)
        ])
    )
    rig.env.run(until=1.5)
    assert not rig.coordinator.degraded_consumers


# ---------------------------------------------------------------------------
# Engine-side recovery
# ---------------------------------------------------------------------------
def test_requeue_prepends_and_counts():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    queued = Request(arrival_time=0.0, prompt_tokens=10, max_new_tokens=5)
    hit = Request(arrival_time=0.0, prompt_tokens=10, max_new_tokens=5)
    engine.waiting.append(queued)
    engine.running.append(hit)
    engine.requeue(hit)
    assert hit not in engine.running
    assert list(engine.waiting) == [hit, queued]  # head of the queue
    assert engine.metrics.requeues == 1
    assert "requeues" in engine.metrics.summary()
