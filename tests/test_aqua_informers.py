"""Tests for the llm-informer and batch-informer policies (§B.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqua import BatchInformer, EngineStats, LlmInformer
from repro.aqua.informers import Action, Decision
from repro.hardware.specs import GiB


def stats(pending=0, used=0, capacity=40 * GiB, offerable=0, now=0.0):
    return EngineStats(
        now=now,
        pending_requests=pending,
        kv_used_bytes=used,
        kv_capacity_bytes=capacity,
        offerable_bytes=offerable,
    )


# ---------------------------------------------------------------------------
# LlmInformer
# ---------------------------------------------------------------------------
def test_llm_informer_offers_when_idle():
    informer = LlmInformer(retain_bytes=5 * GiB)
    decision = informer.decide(stats(pending=0, offerable=30 * GiB), donated_bytes=0)
    assert decision.action is Action.OFFER
    assert decision.nbytes == 25 * GiB


def test_llm_informer_retains_5gb():
    informer = LlmInformer(retain_bytes=5 * GiB)
    decision = informer.decide(stats(offerable=5 * GiB + 1), donated_bytes=0)
    assert decision.action is Action.HOLD  # below min_offer after retention


def test_llm_informer_reclaims_on_queue_buildup():
    informer = LlmInformer(queue_high=4, window=1)
    decision = informer.decide(stats(pending=10), donated_bytes=8 * GiB)
    assert decision.action is Action.RECLAIM


def test_llm_informer_no_reclaim_without_donation():
    informer = LlmInformer(queue_high=4, window=1)
    decision = informer.decide(stats(pending=10, offerable=0), donated_bytes=0)
    assert decision.action is Action.HOLD


def test_llm_informer_smooths_spikes():
    """A single spike within the window does not trigger a reclaim."""
    informer = LlmInformer(queue_high=4, window=3)
    informer.decide(stats(pending=0), donated_bytes=8 * GiB)
    informer.decide(stats(pending=0), donated_bytes=8 * GiB)
    decision = informer.decide(stats(pending=6), donated_bytes=8 * GiB)
    assert decision.action is not Action.RECLAIM
    # Sustained pressure does trigger it.
    informer.decide(stats(pending=6), donated_bytes=8 * GiB)
    decision = informer.decide(stats(pending=6), donated_bytes=8 * GiB)
    assert decision.action is Action.RECLAIM


def test_llm_informer_holds_at_high_utilization():
    informer = LlmInformer(low_utilization=0.5)
    decision = informer.decide(
        stats(used=35 * GiB, capacity=40 * GiB, offerable=30 * GiB), donated_bytes=0
    )
    assert decision.action is Action.HOLD


def test_llm_informer_validation():
    with pytest.raises(ValueError):
        LlmInformer(retain_bytes=-1)
    with pytest.raises(ValueError):
        LlmInformer(min_offer_bytes=0)
    with pytest.raises(ValueError):
        LlmInformer(window=0)


# ---------------------------------------------------------------------------
# BatchInformer
# ---------------------------------------------------------------------------
def test_batch_informer_donates_free_memory():
    informer = BatchInformer(margin_bytes=2 * GiB)
    decision = informer.decide(stats(offerable=50 * GiB), donated_bytes=0)
    assert decision == Decision.offer(48 * GiB)


def test_batch_informer_respects_margin():
    informer = BatchInformer(margin_bytes=2 * GiB, min_offer_bytes=1 * GiB)
    decision = informer.decide(stats(offerable=int(2.5 * GiB)), donated_bytes=0)
    assert decision.action is Action.HOLD


def test_batch_informer_never_reclaims():
    informer = BatchInformer()
    decision = informer.decide(stats(pending=1000, offerable=0), donated_bytes=10 * GiB)
    assert decision.action is Action.HOLD


def test_batch_informer_validation():
    with pytest.raises(ValueError):
        BatchInformer(margin_bytes=-1)
    with pytest.raises(ValueError):
        BatchInformer(min_offer_bytes=0)


# ---------------------------------------------------------------------------
# EngineStats
# ---------------------------------------------------------------------------
def test_kv_utilization():
    s = stats(used=20 * GiB, capacity=40 * GiB)
    assert s.kv_utilization == 0.5


def test_kv_utilization_zero_capacity():
    assert stats(capacity=0).kv_utilization == 0.0


@given(
    pending=st.integers(min_value=0, max_value=100),
    offerable=st.integers(min_value=0, max_value=80 * GiB),
    donated=st.integers(min_value=0, max_value=80 * GiB),
)
@settings(max_examples=100, deadline=None)
def test_llm_informer_never_offers_more_than_offerable(pending, offerable, donated):
    """Property: an offer never exceeds what the engine said it can spare."""
    informer = LlmInformer()
    decision = informer.decide(stats(pending=pending, offerable=offerable), donated)
    if decision.action is Action.OFFER:
        assert 0 < decision.nbytes <= offerable
    if decision.action is Action.RECLAIM:
        assert donated > 0
