"""Tests for the optional inter-server RDMA fabric."""

import pytest

from repro.hardware import Cluster
from repro.hardware.cluster import RDMA_200G
from repro.hardware.interconnect import RoutingError
from repro.hardware.specs import MB
from repro.sim import Environment


def test_no_fabric_by_default():
    env = Environment()
    cluster = Cluster(env, n_servers=2)
    g_remote = cluster.servers[1].gpus[0]
    g_local = cluster.servers[0].gpus[0]
    with pytest.raises(RoutingError):
        cluster.servers[0].interconnect.route(g_remote, g_local)


def test_fabric_connects_all_cross_server_gpu_pairs():
    env = Environment()
    cluster = Cluster(env, n_servers=3, gpus_per_server=2, rdma_link=RDMA_200G)
    for src_server in cluster.servers:
        for dst_server in cluster.servers:
            if src_server is dst_server:
                continue
            for a in src_server.gpus:
                for b in dst_server.gpus:
                    assert src_server.interconnect.connected(a, b)
                    assert dst_server.interconnect.connected(a, b)


def test_cross_server_bandwidth_is_pcie_class():
    env = Environment()
    cluster = Cluster(env, n_servers=2, rdma_link=RDMA_200G)
    server = cluster.servers[0]
    remote = cluster.servers[1].gpus[0]
    local = server.gpus[0]
    nbytes = 256 * MB
    rdma_t = server.transfer_time(remote, local, nbytes)
    dram_t = server.transfer_time(server.dram, local, nbytes)
    nvlink_t = server.transfer_time(server.gpus[1], local, nbytes)
    assert rdma_t >= dram_t * 0.9
    assert rdma_t > 5 * nvlink_t


def test_fabric_channels_shared_for_contention():
    """Transfers from two servers into one destination share its NIC."""
    env = Environment()
    cluster = Cluster(env, n_servers=3, rdma_link=RDMA_200G)
    dst = cluster.servers[0].gpus[0]
    nbytes = 256 * MB
    one = cluster.servers[1].transfer_time(cluster.servers[1].gpus[0], dst, nbytes)

    def move(env, server, src):
        yield from server.transfer(src, dst, nbytes)

    env.process(move(env, cluster.servers[1], cluster.servers[1].gpus[0]))
    env.process(move(env, cluster.servers[2], cluster.servers[2].gpus[0]))
    env.run()
    # Ingress NIC serializes: the pair takes about twice one transfer.
    assert env.now == pytest.approx(2 * one, rel=0.1)


def test_fabric_transfer_executes():
    env = Environment()
    cluster = Cluster(env, n_servers=2, rdma_link=RDMA_200G)
    src = cluster.servers[1].gpus[0]
    dst = cluster.servers[0].gpus[0]

    def move(env):
        yield from cluster.servers[0].transfer(src, dst, 64 * MB)

    env.process(move(env))
    env.run()
    assert env.now > 0


# ---------------------------------------------------------------------------
# Direct coverage for the cluster container itself: _wire_fabric route
# construction, server_of error paths, and iteration-order determinism
# (the routing layer's frontend indices depend on the latter).
# ---------------------------------------------------------------------------
def test_wire_fabric_route_hops_are_pcie_then_egress_then_ingress():
    env = Environment()
    cluster = Cluster(env, n_servers=2, gpus_per_server=2, rdma_link=RDMA_200G)
    src_server, dst_server = cluster.servers[1], cluster.servers[0]
    src, dst = src_server.gpus[1], dst_server.gpus[0]
    route = src_server.interconnect.route(src, dst)
    assert [ch.name for ch in route.channels] == [
        "server1:pcie-up:gpu1",
        "server1:rdma-egress",
        "server0:rdma-ingress",
    ]


def test_wire_fabric_shares_channel_objects_across_interconnects():
    """Both endpoints' interconnects must hold the *same* NIC channel
    objects — identity, not equal copies — or contention would not be
    global (the queue on one copy would be invisible to the other)."""
    env = Environment()
    cluster = Cluster(env, n_servers=3, rdma_link=RDMA_200G)
    a, b, c = cluster.servers
    for name in (f"{a.name}:rdma-egress", f"{a.name}:rdma-ingress"):
        assert b.interconnect.channels[name] is a.interconnect.channels[name]
        assert c.interconnect.channels[name] is a.interconnect.channels[name]


def test_wire_fabric_adds_one_nic_pair_per_server():
    env = Environment()
    cluster = Cluster(env, n_servers=3, rdma_link=RDMA_200G)
    for server in cluster:
        rdma = [
            name
            for name in server.interconnect.channels
            if name.startswith(f"{server.name}:rdma-")
        ]
        assert sorted(rdma) == [
            f"{server.name}:rdma-egress",
            f"{server.name}:rdma-ingress",
        ]


def test_server_of_finds_the_hosting_server():
    env = Environment()
    cluster = Cluster(env, n_servers=3, gpus_per_server=2)
    for server in cluster.servers:
        for gpu in server.gpus:
            assert cluster.server_of(gpu) is server


def test_server_of_rejects_foreign_gpu():
    env = Environment()
    cluster = Cluster(env, n_servers=2)
    other = Cluster(env, n_servers=1)
    with pytest.raises(LookupError):
        cluster.server_of(other.servers[0].gpus[0])


def test_cluster_rejects_zero_servers():
    with pytest.raises(ValueError):
        Cluster(Environment(), n_servers=0)


def test_cluster_iteration_order_is_deterministic_and_server_major():
    env = Environment()
    cluster = Cluster(env, n_servers=4, gpus_per_server=2)
    assert len(cluster) == 4
    names = [server.name for server in cluster]
    assert names == ["server0", "server1", "server2", "server3"]
    assert names == [server.name for server in cluster]  # stable on re-iteration
    # cluster.gpus is server-major: all of server0's GPUs, then server1's...
    expected = [gpu for server in cluster.servers for gpu in server.gpus]
    assert cluster.gpus == expected
    assert cluster.n_gpus == 8
