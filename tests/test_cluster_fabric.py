"""Tests for the optional inter-server RDMA fabric."""

import pytest

from repro.hardware import Cluster
from repro.hardware.cluster import RDMA_200G
from repro.hardware.interconnect import RoutingError
from repro.hardware.specs import MB
from repro.sim import Environment


def test_no_fabric_by_default():
    env = Environment()
    cluster = Cluster(env, n_servers=2)
    g_remote = cluster.servers[1].gpus[0]
    g_local = cluster.servers[0].gpus[0]
    with pytest.raises(RoutingError):
        cluster.servers[0].interconnect.route(g_remote, g_local)


def test_fabric_connects_all_cross_server_gpu_pairs():
    env = Environment()
    cluster = Cluster(env, n_servers=3, gpus_per_server=2, rdma_link=RDMA_200G)
    for src_server in cluster.servers:
        for dst_server in cluster.servers:
            if src_server is dst_server:
                continue
            for a in src_server.gpus:
                for b in dst_server.gpus:
                    assert src_server.interconnect.connected(a, b)
                    assert dst_server.interconnect.connected(a, b)


def test_cross_server_bandwidth_is_pcie_class():
    env = Environment()
    cluster = Cluster(env, n_servers=2, rdma_link=RDMA_200G)
    server = cluster.servers[0]
    remote = cluster.servers[1].gpus[0]
    local = server.gpus[0]
    nbytes = 256 * MB
    rdma_t = server.transfer_time(remote, local, nbytes)
    dram_t = server.transfer_time(server.dram, local, nbytes)
    nvlink_t = server.transfer_time(server.gpus[1], local, nbytes)
    assert rdma_t >= dram_t * 0.9
    assert rdma_t > 5 * nvlink_t


def test_fabric_channels_shared_for_contention():
    """Transfers from two servers into one destination share its NIC."""
    env = Environment()
    cluster = Cluster(env, n_servers=3, rdma_link=RDMA_200G)
    dst = cluster.servers[0].gpus[0]
    nbytes = 256 * MB
    one = cluster.servers[1].transfer_time(cluster.servers[1].gpus[0], dst, nbytes)

    def move(env, server, src):
        yield from server.transfer(src, dst, nbytes)

    env.process(move(env, cluster.servers[1], cluster.servers[1].gpus[0]))
    env.process(move(env, cluster.servers[2], cluster.servers[2].gpus[0]))
    env.run()
    # Ingress NIC serializes: the pair takes about twice one transfer.
    assert env.now == pytest.approx(2 * one, rel=0.1)


def test_fabric_transfer_executes():
    env = Environment()
    cluster = Cluster(env, n_servers=2, rdma_link=RDMA_200G)
    src = cluster.servers[1].gpus[0]
    dst = cluster.servers[0].gpus[0]

    def move(env):
        yield from cluster.servers[0].transfer(src, dst, 64 * MB)

    env.process(move(env))
    env.run()
    assert env.now > 0
