"""Tests for replication statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.stats import (
    Spread,
    coefficient_of_variation,
    mean_std,
    replicate,
    summarize_replicates,
)


def test_mean_std_basic():
    s = mean_std([1.0, 2.0, 3.0])
    assert s.mean == 2.0
    assert s.std == pytest.approx(1.0)
    assert s.n == 3
    assert s.stderr == pytest.approx(1.0 / 3**0.5)


def test_mean_std_single_value():
    s = mean_std([5.0])
    assert s.mean == 5.0
    assert s.std == 0.0


def test_mean_std_empty_rejected():
    with pytest.raises(ValueError):
        mean_std([])


def test_spread_str():
    assert "n=2" in str(mean_std([1, 2]))


def test_replicate_runs_each_seed():
    results = replicate(lambda seed: {"seed": seed, "x": seed * 2}, seeds=[1, 2, 3])
    assert [r["seed"] for r in results] == [1, 2, 3]
    with pytest.raises(ValueError):
        replicate(lambda s: {}, seeds=[])


def test_summarize_replicates():
    results = [{"a": 1.0, "b": 10.0}, {"a": 3.0, "b": 10.0}]
    summary = summarize_replicates(results, ["a", "b"])
    assert summary["a"].mean == 2.0
    assert summary["b"].std == 0.0


def test_summarize_missing_key_raises():
    with pytest.raises(KeyError):
        summarize_replicates([{"a": 1.0}, {}], ["a"])


def test_coefficient_of_variation():
    assert coefficient_of_variation(Spread(mean=10, std=1, n=3)) == pytest.approx(0.1)
    assert coefficient_of_variation(Spread(mean=0, std=0, n=3)) == 0.0
    assert coefficient_of_variation(Spread(mean=0, std=1, n=3)) == float("inf")


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=40
    )
)
@settings(max_examples=100, deadline=None)
def test_mean_std_properties(values):
    """Property: mean within [min, max]; std is non-negative."""
    s = mean_std(values)
    assert min(values) - 1e-9 <= s.mean <= max(values) + 1e-9
    assert s.std >= 0
    if len(set(values)) == 1:
        assert s.std == pytest.approx(0.0, abs=1e-6)
