"""Direct unit tests of the chatbot closed-loop workload."""

import pytest

from repro.sim import Environment
from repro.workloads import ChatbotWorkload
from repro.workloads.arrivals import closed_loop_user
from repro.serving.request import Request


class InstantEngine:
    """A stub engine that completes every request after a fixed delay."""

    def __init__(self, env, delay=1.0):
        self.env = env
        self.delay = delay
        self.received: list[Request] = []

    def submit(self, request: Request) -> None:
        self.received.append(request)

        def finish(env):
            yield env.timeout(self.delay)
            request.generated_tokens = request.max_new_tokens - 1
            request.record_token(env.now)

        self.env.process(finish(self.env))


def test_workload_validation():
    with pytest.raises(ValueError):
        ChatbotWorkload(n_users=0)
    with pytest.raises(ValueError):
        ChatbotWorkload(n_users=1, turns=0)


def test_each_user_issues_each_turn():
    env = Environment()
    engine = InstantEngine(env)
    workload = ChatbotWorkload(n_users=5, turns=3, seed=0)
    users = workload.attach(env, engine)
    env.run()
    assert all(u.processed for u in users)
    assert len(engine.received) == 15
    per_user = {}
    for r in engine.received:
        per_user.setdefault(r.user, []).append(r)
    assert set(per_user) == set(range(5))
    assert all(len(reqs) == 3 for reqs in per_user.values())


def test_turns_are_sequential_per_user():
    env = Environment()
    engine = InstantEngine(env, delay=2.0)
    workload = ChatbotWorkload(n_users=2, turns=3, seed=1)
    workload.attach(env, engine)
    env.run()
    per_user = {}
    for r in engine.received:
        per_user.setdefault(r.user, []).append(r)
    for reqs in per_user.values():
        arrivals = [r.arrival_time for r in reqs]
        assert arrivals == sorted(arrivals)
        # Each turn waits for the previous response (>= 2s apart).
        for a, b in zip(arrivals, arrivals[1:]):
            assert b - a >= 2.0


def test_context_accumulates_across_turns():
    env = Environment()
    engine = InstantEngine(env)
    workload = ChatbotWorkload(n_users=1, turns=4, seed=2)
    workload.attach(env, engine)
    env.run()
    prompts = [r.prompt_tokens for r in engine.received]
    # Each turn embeds the whole prior conversation: strictly growing.
    assert prompts == sorted(prompts)
    assert prompts[-1] > prompts[0]
    # Turn t's prompt exceeds turn t-1's prompt + response.
    for prev, nxt in zip(engine.received, engine.received[1:]):
        assert nxt.prompt_tokens >= prev.prompt_tokens + prev.max_new_tokens


def test_sharegpt_mode_uses_shorter_prompts():
    def first_prompt(code_chat):
        env = Environment()
        engine = InstantEngine(env)
        ChatbotWorkload(n_users=8, turns=1, seed=3, code_chat=code_chat).attach(
            env, engine
        )
        env.run()
        return sum(r.prompt_tokens for r in engine.received) / len(engine.received)

    assert first_prompt(code_chat=True) > first_prompt(code_chat=False)


def test_closed_loop_user_validation():
    env = Environment()
    engine = InstantEngine(env)
    with pytest.raises(ValueError):
        env.process(
            closed_loop_user(
                env,
                engine,
                lambda turn: Request(0.0, 10, 10),
                turns=0,
                think_time=lambda: 1.0,
            )
        )
        env.run()


def test_workload_deterministic_by_seed():
    def trace(seed):
        env = Environment()
        engine = InstantEngine(env)
        ChatbotWorkload(n_users=3, turns=2, seed=seed).attach(env, engine)
        env.run()
        return [
            (r.user, r.prompt_tokens, r.max_new_tokens) for r in engine.received
        ]

    assert trace(7) == trace(7)
    assert trace(7) != trace(8)
