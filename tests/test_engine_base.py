"""Tests for LLMEngineBase machinery shared by all LLM engines."""

import pytest

from repro.aqua import AquaLib, Coordinator, EngineStats, LlmInformer
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.models import LLAMA2_13B, MISTRAL_7B
from repro.serving import Request, VLLMEngine
from repro.serving.engine import LLMEngineBase
from repro.sim import Environment


def test_base_serve_is_abstract():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = LLMEngineBase(server.gpus[0], server, MISTRAL_7B)
    with pytest.raises(NotImplementedError):
        next(engine._serve())


def test_utilization_validation():
    env = Environment()
    server = Server(env, n_gpus=1)
    with pytest.raises(ValueError):
        LLMEngineBase(server.gpus[0], server, MISTRAL_7B, utilization=1.5)


def test_memory_reservations_on_init():
    env = Environment()
    server = Server(env, n_gpus=1)
    gpu = server.gpus[0]
    engine = LLMEngineBase(gpu, server, LLAMA2_13B, name="e")
    assert gpu.hbm.held("e:weights") == LLAMA2_13B.weight_bytes
    assert gpu.hbm.held("e:workspace") > 0
    assert engine.kv_capacity_bytes > 10 * GiB
    # Budgeted: total usage stays within the utilization fraction.
    assert gpu.hbm.used <= 0.9 * gpu.spec.hbm_bytes + engine.allocator.block_bytes


def test_engine_stats_fields():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.submit(Request(arrival_time=0.0, prompt_tokens=10, max_new_tokens=5))
    stats = engine.engine_stats()
    assert isinstance(stats, EngineStats)
    assert stats.pending_requests == 1
    assert stats.arrived_total == 1
    assert stats.kv_capacity_bytes == engine.kv_capacity_bytes
    assert stats.offerable_bytes == engine.kv_free_bytes


def test_producer_tick_shrinks_only_free_blocks():
    """A donation request larger than the free region shrinks to fit."""
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()

    class GreedyInformer:
        def decide(self, stats, donated):
            from repro.aqua.informers import Decision

            if donated:
                return Decision.hold()
            return Decision.offer(10**15)  # absurd: more than exists

    lib = AquaLib(server.gpus[0], server, coord, informer=GreedyInformer())
    engine = VLLMEngine(
        server.gpus[0], server, LLAMA2_13B, aqua_lib=lib, inform_every=1
    )
    engine.start()
    env.run(until=2)
    assert 0 < lib.donated_bytes <= engine.kv_capacity_bytes + lib.donated_bytes
    assert engine.allocator.free_blocks >= 0


def test_producer_tick_grow_after_reclaim():
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(
        server.gpus[0], server, coord,
        informer=LlmInformer(queue_high=1, window=1, rate_low=0.4, rate_high=0.5),
    )
    engine = VLLMEngine(
        server.gpus[0], server, LLAMA2_13B, aqua_lib=lib, inform_every=1
    )
    engine.start()
    env.run(until=2)
    donated = lib.donated_bytes
    capacity_small = engine.kv_capacity_bytes
    assert donated > 0
    # Heavy traffic triggers reclaim; the engine's region grows back
    # (and re-shrinks once the burst drains — track the peak).
    for i in range(200):
        engine.submit(
            Request(arrival_time=env.now, prompt_tokens=300, max_new_tokens=150)
        )
    peak = [0]

    def watch(env):
        while True:
            peak[0] = max(peak[0], engine.kv_capacity_bytes)
            yield env.timeout(0.25)

    env.process(watch(env))
    env.run(until=60)
    assert peak[0] > capacity_small


def test_wait_for_arrival_times_out():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)

    def waiter(env):
        yield from engine._wait_for_arrival(max_wait=0.5)
        return env.now

    p = env.process(waiter(env))
    env.run(until=p)
    assert p.value == pytest.approx(0.5)


def test_wait_for_arrival_returns_immediately_with_backlog():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.waiting.append(Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1))

    def waiter(env):
        yield from engine._wait_for_arrival(max_wait=10.0)
        yield env.timeout(0)  # ensure it is a generator even if empty
        return env.now

    p = env.process(waiter(env))
    env.run(until=p)
    assert p.value == 0.0


def test_sample_memory_series():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.sample_memory()
    assert "free_hbm" in engine.metrics.series
    assert "kv_free" in engine.metrics.series
