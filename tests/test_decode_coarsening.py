"""Time-warp decode coarsening (PR 7): fidelity and event savings.

``decode_coarsen=k`` fuses up to ``k`` per-token decode steps of a
frozen batch into one aggregate compute event whose duration is the
*exact sum* of the per-step roofline times, then replays the per-token
bookkeeping at the window end.  The contract tested here:

* modelled outcomes (token totals, completions — and, whenever the
  batch composition is pinned, completion *times*) match the exact
  per-token path;
* the kernel retires strictly fewer events, which is the whole point;
* windows clamp to the boundaries that carry semantics: request
  completion, ``inform_every``, CFS slice budgets, FlexGen
  ``respond_every``;
* ``decode_coarsen=1`` (the default) takes the original code path —
  byte-identical behaviour is locked down by the golden digest in
  ``tests/test_determinism_golden.py``.
"""

import pytest

from repro.experiments.harness import build_consumer_rig
from repro.hardware import Server
from repro.models import KANDINSKY, MISTRAL_7B, OPT_30B, SD_15
from repro.serving import (
    BatchEngine,
    CFSEngine,
    FlexGenEngine,
    OrcaEngine,
    Request,
    VLLMEngine,
)
from repro.sim import Environment
from repro.workloads.arrivals import submit_all
from repro.workloads.sharegpt import sharegpt_requests


def make_server(n_gpus=1):
    env = Environment()
    return env, Server(env, n_gpus=n_gpus, topology="p2p")


def closed_batch(n, prompt=100, gen=40):
    """All arrivals at t=0 with equal lengths: the batch composition is
    frozen for the whole run, so coarsened timings must match exactly."""
    return [
        Request(arrival_time=0.0, prompt_tokens=prompt, max_new_tokens=gen)
        for _ in range(n)
    ]


def finish_times(requests):
    return [r.finish_time for r in requests]


# ---------------------------------------------------------------------------
# vLLM
# ---------------------------------------------------------------------------
def run_vllm(coarsen, requests):
    env, server = make_server()
    engine = VLLMEngine(
        server.gpus[0], server, MISTRAL_7B, decode_coarsen=coarsen
    )
    engine.start()
    submit_all(env, engine, requests)
    env.run(until=600)
    return env, engine


def test_vllm_coarsened_run_matches_exact_run():
    exact_reqs, coarse_reqs = closed_batch(12), closed_batch(12)
    env1, e1 = run_vllm(1, exact_reqs)
    env8, e8 = run_vllm(8, coarse_reqs)
    assert all(r.done for r in exact_reqs) and all(r.done for r in coarse_reqs)
    assert e8.metrics.tokens_generated == e1.metrics.tokens_generated
    # Frozen batch: window durations are exact sums of the per-step
    # roofline times, so completion times agree to float precision.
    for a, b in zip(finish_times(exact_reqs), finish_times(coarse_reqs)):
        assert b == pytest.approx(a, rel=1e-9)
    # ~8x fewer decode events is the payoff.
    assert env8.events_processed < env1.events_processed


def test_vllm_coarsening_with_open_arrivals_still_completes():
    """Open arrivals change batch composition between windows; totals
    must still be exact even though per-token timestamps may shift."""
    exact_reqs = sharegpt_requests(rate=5, count=20, seed=3)
    coarse_reqs = sharegpt_requests(rate=5, count=20, seed=3)
    _, e1 = run_vllm(1, exact_reqs)
    _, e8 = run_vllm(8, coarse_reqs)
    assert all(r.done for r in coarse_reqs)
    assert e8.metrics.tokens_generated == e1.metrics.tokens_generated
    assert len(e8.metrics.completed) == len(e1.metrics.completed)


def test_vllm_window_clamps_to_remaining_tokens():
    """decode_coarsen far beyond max_new_tokens must not overshoot."""
    reqs = closed_batch(4, gen=5)
    _, engine = run_vllm(64, reqs)
    assert all(r.done for r in reqs)
    assert all(r.generated_tokens == 5 for r in reqs)
    assert engine.metrics.tokens_generated == 20


def test_vllm_preemption_survives_coarsening():
    """KV exhaustion mid-run: lazy repair at window boundaries must not
    break the preempt/resume machinery."""
    env, server = make_server()
    from repro.models import CODELLAMA_34B

    engine = VLLMEngine(
        server.gpus[0], server, CODELLAMA_34B, decode_coarsen=8
    )
    engine.start()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=2000, max_new_tokens=4000)
        for _ in range(10)
    ]
    submit_all(env, engine, requests)
    env.run(until=1200)
    assert engine.preemptions > 0
    assert all(r.done for r in requests)


# ---------------------------------------------------------------------------
# Orca
# ---------------------------------------------------------------------------
def test_orca_coarsened_run_matches_exact_run():
    def run(coarsen):
        env, server = make_server()
        engine = OrcaEngine(
            server.gpus[0], server, MISTRAL_7B, decode_coarsen=coarsen
        )
        engine.start()
        reqs = closed_batch(8)
        submit_all(env, engine, reqs)
        env.run(until=600)
        return env, engine, reqs

    env1, e1, r1 = run(1)
    env8, e8, r8 = run(8)
    assert all(r.done for r in r1) and all(r.done for r in r8)
    assert e8.metrics.tokens_generated == e1.metrics.tokens_generated
    for a, b in zip(finish_times(r1), finish_times(r8)):
        assert b == pytest.approx(a, rel=1e-9)
    assert env8.events_processed < env1.events_processed


# ---------------------------------------------------------------------------
# CFS
# ---------------------------------------------------------------------------
def test_cfs_coarsened_run_matches_exact_run():
    """Coarse windows never cross a slice boundary, so scheduling
    decisions — and therefore times — are identical for any workload."""

    def run(coarsen):
        env, server = make_server()
        engine = CFSEngine(
            server.gpus[0],
            server,
            MISTRAL_7B,
            use_aqua=False,
            slice_tokens=5,
            decode_coarsen=coarsen,
        )
        engine.start()
        reqs = [
            Request(arrival_time=i * 0.2, prompt_tokens=200, max_new_tokens=30)
            for i in range(10)
        ]
        submit_all(env, engine, reqs)
        env.run(until=600)
        return env, engine, reqs

    env1, e1, r1 = run(1)
    env8, e8, r8 = run(8)
    assert all(r.done for r in r1) and all(r.done for r in r8)
    assert e8.metrics.tokens_generated == e1.metrics.tokens_generated
    assert e8.slices_run == e1.slices_run
    for a, b in zip(finish_times(r1), finish_times(r8)):
        assert b == pytest.approx(a, rel=1e-9)
    assert env8.events_processed < env1.events_processed


# ---------------------------------------------------------------------------
# FlexGen
# ---------------------------------------------------------------------------
def test_flexgen_coarsened_run_matches_exact_run():
    from repro.aqua import AquaLib, Coordinator

    def run(coarsen):
        env, server = make_server(n_gpus=2)
        coord = Coordinator()
        lib = AquaLib(server.gpus[0], server, coord)
        engine = FlexGenEngine(
            server.gpus[0],
            server,
            OPT_30B,
            aqua_lib=lib,
            workspace_tokens=8000,
            decode_coarsen=coarsen,
        )
        engine.start()
        reqs = [
            Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=48)
            for _ in range(2)
        ]
        submit_all(env, engine, reqs)
        env.run(until=900)
        return env, engine, reqs

    env1, e1, r1 = run(1)
    env8, e8, r8 = run(8)
    assert all(r.done for r in r1) and all(r.done for r in r8)
    assert e8.metrics.tokens_generated == e1.metrics.tokens_generated
    for a, b in zip(finish_times(r1), finish_times(r8)):
        assert b == pytest.approx(a, rel=1e-9)
    assert env8.events_processed < env1.events_processed
    # Window ends are clamped to respond_every boundaries, so the
    # streaming-response cadence is unchanged.
    assert all(r.generated_tokens == 48 for r in r8)


# ---------------------------------------------------------------------------
# BatchEngine (producer-side analogue)
# ---------------------------------------------------------------------------
def test_batch_engine_coarsened_backlog_matches_exact_run():
    def run(coarsen):
        env, server = make_server()
        engine = BatchEngine(
            server.gpus[0], server, SD_15, batch_size=8, decode_coarsen=coarsen
        )
        engine.start()
        reqs = [
            Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1)
            for _ in range(32)
        ]
        submit_all(env, engine, reqs)
        env.run(until=600)
        return env, engine, reqs

    env1, e1, r1 = run(1)
    env4, e4, r4 = run(4)
    assert all(r.done for r in r1) and all(r.done for r in r4)
    assert e4.batches_run == e1.batches_run == 4
    assert len(e4.metrics.completed) == len(e1.metrics.completed) == 32
    # The last batch of the window finishes at the same modelled time;
    # earlier batches inside a window are stamped at the window end (the
    # documented fidelity trade).
    assert max(finish_times(r4)) == pytest.approx(max(finish_times(r1)), rel=1e-9)
    assert env4.events_processed < env1.events_processed


def test_batch_engine_partial_backlog_takes_exact_path():
    """Below two full batches the coarse branch never engages, so the
    per-batch path (and its timestamps) is untouched."""
    env, server = make_server()
    engine = BatchEngine(
        server.gpus[0], server, KANDINSKY, batch_size=8, decode_coarsen=4
    )
    engine.start()
    reqs = [
        Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1)
        for _ in range(8)
    ]
    submit_all(env, engine, reqs)
    env.run(until=300)
    assert all(r.done for r in reqs)
    assert engine.batches_run == 1


# ---------------------------------------------------------------------------
# Validation + harness threading
# ---------------------------------------------------------------------------
def test_invalid_decode_coarsen_rejected():
    env, server = make_server()
    with pytest.raises(ValueError, match="decode_coarsen"):
        VLLMEngine(server.gpus[0], server, MISTRAL_7B, decode_coarsen=0)
    with pytest.raises(ValueError, match="decode_coarsen"):
        BatchEngine(server.gpus[0], server, SD_15, decode_coarsen=-1)


def test_harness_threads_decode_coarsen_and_scheduler():
    rig = build_consumer_rig(
        "vllm",
        MISTRAL_7B,
        producer_model=SD_15,
        use_aqua=True,
        scheduler="calendar",
        decode_coarsen=4,
    )
    assert rig.env.scheduler == "calendar"
    assert rig.consumer_engine.decode_coarsen == 4
    assert rig.producer_engine.decode_coarsen == 4


def test_harness_defaults_stay_exact():
    rig = build_consumer_rig("vllm", MISTRAL_7B, use_aqua=False)
    assert rig.env.scheduler == "heap"
    assert rig.consumer_engine.decode_coarsen == 1
