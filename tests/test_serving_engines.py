"""Integration tests for the serving engines on simulated hardware."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator, LlmInformer
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.models import CODELLAMA_34B, KANDINSKY, LLAMA2_13B, MISTRAL_7B, OPT_30B, SD_15
from repro.serving import BatchEngine, CFSEngine, FlexGenEngine, Request, VLLMEngine
from repro.workloads import long_prompt_requests, producer_requests, sharegpt_requests
from repro.workloads.arrivals import submit_all


def make_server(n_gpus=2):
    from repro.sim import Environment

    env = Environment()
    return env, Server(env, n_gpus=n_gpus, topology="p2p")


# ---------------------------------------------------------------------------
# VLLMEngine
# ---------------------------------------------------------------------------
def test_vllm_serves_single_request():
    env, server = make_server()
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.start()
    req = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=50)
    engine.submit(req)
    env.run(until=60)
    assert req.done
    assert req.ttft is not None and req.ttft > 0
    assert req.rct is not None and req.rct > req.ttft
    assert engine.metrics.tokens_generated == 50


def test_vllm_continuous_batching_overlaps_requests():
    env, server = make_server()
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.start()
    requests = sharegpt_requests(rate=5, count=20, seed=0)
    submit_all(env, engine, requests)
    env.run(until=300)
    assert all(r.done for r in requests)
    # Batched serving must beat sequential: the run finishes far sooner
    # than the sum of individual completion times.
    last_finish = max(r.finish_time for r in requests)
    assert last_finish <= sum(r.rct for r in requests)


def test_vllm_respects_fifo_admission():
    env, server = make_server()
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B, max_batch=1)
    engine.start()
    first = Request(arrival_time=0.0, prompt_tokens=50, max_new_tokens=100)
    second = Request(arrival_time=0.0, prompt_tokens=50, max_new_tokens=10)
    engine.submit(first)
    engine.submit(second)
    env.run(until=120)
    assert first.first_token_time < second.first_token_time


def test_vllm_starves_queued_requests_under_memory_pressure():
    """The Figure 1a/9 behaviour: once KV memory is full, later requests
    wait with zero progress, so their TTFT explodes."""
    env, server = make_server()
    engine = VLLMEngine(server.gpus[0], server, CODELLAMA_34B)
    engine.start()
    requests = [
        Request(arrival_time=i * 0.2, prompt_tokens=1500, max_new_tokens=400)
        for i in range(60)
    ]
    submit_all(env, engine, requests)
    env.run(until=400)
    import statistics

    done = [r for r in requests if r.ttft is not None]
    early = [r.ttft for r in done[:10]]
    late = [r.ttft for r in done[-10:]]
    assert max(early) < min(late)
    assert statistics.median(late) > 10 * statistics.median(early)


def test_vllm_preemption_on_kv_exhaustion():
    env, server = make_server()
    engine = VLLMEngine(server.gpus[0], server, CODELLAMA_34B)
    engine.start()
    # Few requests, each growing large: forces mid-generation OOM.
    requests = [
        Request(arrival_time=0.0, prompt_tokens=2000, max_new_tokens=4000)
        for _ in range(10)
    ]
    submit_all(env, engine, requests)
    env.run(until=1200)
    assert engine.preemptions > 0
    assert all(r.done for r in requests)


def test_vllm_rejects_oversized_prompt():
    env, server = make_server()
    engine = VLLMEngine(server.gpus[0], server, OPT_30B, workspace_tokens=8000)
    engine.start()
    engine.submit(Request(arrival_time=0.0, prompt_tokens=8000, max_new_tokens=10))
    env.run(until=10)
    assert len(engine.rejected) == 1


def test_vllm_invalid_params():
    env, server = make_server()
    with pytest.raises(ValueError):
        VLLMEngine(server.gpus[0], server, MISTRAL_7B, max_batch=0)
    with pytest.raises(ValueError):
        VLLMEngine(server.gpus[1], server, MISTRAL_7B, utilization=0.0)


def test_vllm_double_start_rejected():
    env, server = make_server()
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.start()
    with pytest.raises(RuntimeError):
        engine.start()


def test_vllm_as_producer_donates_when_idle():
    env, server = make_server()
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord, informer=LlmInformer())
    engine = VLLMEngine(
        server.gpus[0], server, LLAMA2_13B, aqua_lib=lib, inform_every=1
    )
    engine.start()
    env.run(until=5)
    assert lib.donated_bytes > 5 * GiB
    assert coord.leases[lib.name].offered == lib.donated_bytes


def test_vllm_producer_reclaims_under_load():
    env, server = make_server()
    coord = Coordinator()
    lib = AquaLib(
        server.gpus[0], server, coord, informer=LlmInformer(queue_high=4, window=1)
    )
    engine = VLLMEngine(
        server.gpus[0], server, LLAMA2_13B, aqua_lib=lib, inform_every=1
    )
    engine.start()
    env.run(until=5)
    donated = lib.donated_bytes
    assert donated > 0
    requests = sharegpt_requests(rate=10, count=150, seed=1, start=5.0)
    submit_all(env, engine, requests)
    low_water = [donated]

    def monitor(env):
        while True:
            yield env.timeout(0.5)
            low_water[0] = min(low_water[0], lib.donated_bytes)

    env.process(monitor(env))
    env.run(until=120)
    # Mid-burst the queue built up and the donation was pulled back...
    assert low_water[0] < donated / 2
    # ...then re-donated once the burst drained (elastic, Figure 10).
    assert lib.donated_bytes > donated / 2
    assert all(r.done for r in requests)


# ---------------------------------------------------------------------------
# CFSEngine
# ---------------------------------------------------------------------------
def burst(n, prompt=1200, gen=300):
    return [
        Request(arrival_time=i * 0.2, prompt_tokens=prompt, max_new_tokens=gen)
        for i in range(n)
    ]


def run_cfs(use_aqua, n_requests=40, until=600.0):
    env, server = make_server()
    coord = Coordinator()
    consumer_lib = AquaLib(server.gpus[0], server, coord)
    producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
    producer = BatchEngine(server.gpus[1], server, KANDINSKY, aqua_lib=producer_lib)
    producer.start()
    coord.pair(consumer_lib.name, producer_lib.name)
    engine = CFSEngine(
        server.gpus[0],
        server,
        CODELLAMA_34B,
        use_aqua=use_aqua,
        aqua_lib=consumer_lib if use_aqua else None,
        slice_tokens=5,
    )
    engine.start()
    requests = burst(n_requests)
    submit_all(env, engine, requests)
    env.run(until=until)
    return engine, requests


def test_cfs_completes_burst():
    engine, requests = run_cfs(use_aqua=True)
    assert all(r.done for r in requests)
    assert engine.slices_run > 0


def test_cfs_fairness_prevents_ttft_explosion():
    """CFS gives every arrival a slice quickly: TTFT stays flat where the
    vLLM batcher starves (Figure 9)."""
    engine, requests = run_cfs(use_aqua=True)
    ttfts = [r.ttft for r in requests]
    assert max(ttfts) < 30  # no starvation cliff


def test_cfs_aqua_switches_faster_than_dram():
    fast, _ = run_cfs(use_aqua=True)
    slow, _ = run_cfs(use_aqua=False)
    assert fast.context_switch_time < slow.context_switch_time / 2


def test_cfs_uses_fast_path_when_producer_available():
    engine, _ = run_cfs(use_aqua=True, n_requests=30)
    # Context tensors were parked on the producer GPU at least sometimes.
    stats = engine.aqua_lib.coordinator.request("GET", "/stats").body
    assert engine.context_switch_time > 0


def test_cfs_validation():
    env, server = make_server()
    with pytest.raises(ValueError):
        CFSEngine(server.gpus[0], server, MISTRAL_7B, slice_tokens=0)
    with pytest.raises(ValueError):
        CFSEngine(server.gpus[1], server, MISTRAL_7B, use_aqua=True)


# ---------------------------------------------------------------------------
# FlexGenEngine
# ---------------------------------------------------------------------------
def run_flexgen(paired, duration=60.0, gather=True):
    env, server = make_server()
    coord = Coordinator()
    consumer_lib = AquaLib(server.gpus[0], server, coord, gather_enabled=gather)
    engine = FlexGenEngine(
        server.gpus[0],
        server,
        OPT_30B,
        aqua_lib=consumer_lib,
        workspace_tokens=8000,
    )
    if paired:
        producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        producer = BatchEngine(server.gpus[1], server, SD_15, aqua_lib=producer_lib)
        producer.start()
        coord.pair(consumer_lib.name, producer_lib.name)
    engine.start()
    submit_all(env, engine, long_prompt_requests())
    env.run(until=duration)
    return engine


def test_flexgen_baseline_generates_some_tokens():
    engine = run_flexgen(paired=False)
    assert engine.metrics.tokens_generated > 10


def test_flexgen_aqua_speedup_over_dram():
    """Figure 7: NVLink-offloaded context beats DRAM by several x."""
    baseline = run_flexgen(paired=False)
    aqua = run_flexgen(paired=True)
    speedup = aqua.metrics.tokens_generated / baseline.metrics.tokens_generated
    assert speedup > 3


def test_flexgen_requires_aqua_lib():
    env, server = make_server()
    with pytest.raises(ValueError):
        FlexGenEngine(server.gpus[0], server, OPT_30B)


# ---------------------------------------------------------------------------
# BatchEngine
# ---------------------------------------------------------------------------
def test_batch_engine_completes_requests():
    env, server = make_server()
    engine = BatchEngine(server.gpus[0], server, SD_15)
    engine.start()
    requests = producer_requests(rate=2.0, count=10, seed=0)
    submit_all(env, engine, requests)
    env.run(until=120)
    assert all(r.done for r in requests)
    assert engine.batches_run >= 1


def test_batch_engine_batches_up_work():
    env, server = make_server()
    engine = BatchEngine(server.gpus[0], server, SD_15, batch_size=8)
    engine.start()
    for _ in range(8):
        engine.submit(Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1))
    env.run(until=60)
    assert engine.batches_run == 1


def test_batch_engine_donates_free_memory():
    env, server = make_server()
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord, informer=BatchInformer())
    engine = BatchEngine(server.gpus[0], server, SD_15, aqua_lib=lib)
    engine.start()
    env.run(until=2)
    assert lib.donated_bytes > 20 * GiB


def test_batch_engine_invalid_batch():
    env, server = make_server()
    with pytest.raises(ValueError):
        BatchEngine(server.gpus[0], server, SD_15, batch_size=0)
