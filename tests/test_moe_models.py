"""Tests for the mixture-of-experts roofline extension (Mixtral)."""

import pytest

from repro.hardware import A100_80G, H100_80G
from repro.models.llm import LLAMA2_13B, LLMSpec, MIXTRAL_8X7B


def test_dense_models_are_not_moe():
    assert not LLAMA2_13B.is_moe
    assert LLAMA2_13B.n_active_params == LLAMA2_13B.n_params
    assert LLAMA2_13B.weight_read_fraction(1) == 1.0


def test_mixtral_is_moe():
    assert MIXTRAL_8X7B.is_moe
    assert MIXTRAL_8X7B.n_active_params == pytest.approx(12.9e9)


def test_moe_validation():
    with pytest.raises(ValueError):
        LLMSpec(
            "bad", 10e9, n_layers=4, n_heads=4, n_kv_heads=4, head_dim=64,
            n_active_params=20e9,
        )
    with pytest.raises(ValueError):
        LLMSpec(
            "bad", 10e9, n_layers=4, n_heads=4, n_kv_heads=4, head_dim=64,
            n_active_params=-1,
        )


def test_moe_weight_read_grows_with_batch():
    f1 = MIXTRAL_8X7B.weight_read_fraction(1)
    f2 = MIXTRAL_8X7B.weight_read_fraction(2)
    f8 = MIXTRAL_8X7B.weight_read_fraction(8)
    assert f1 == pytest.approx(12.9 / 46.7, rel=0.01)
    assert f1 < f2 < f8
    assert MIXTRAL_8X7B.weight_read_fraction(100) == 1.0


def test_moe_single_stream_decode_faster_than_dense_equal_size():
    """At batch 1 an MoE streams only its active experts, so it decodes
    faster than a dense model of the same total size."""
    dense = LLMSpec(
        "dense-47b", 46.7e9, n_layers=32, n_heads=32, n_kv_heads=8, head_dim=128
    )
    moe_step = MIXTRAL_8X7B.decode_step_time(H100_80G, 1, 1000)
    dense_step = dense.decode_step_time(H100_80G, 1, 1000)
    assert moe_step < 0.5 * dense_step


def test_moe_advantage_shrinks_at_large_batch():
    dense = LLMSpec(
        "dense-47b", 46.7e9, n_layers=32, n_heads=32, n_kv_heads=8, head_dim=128
    )
    ratio_small = dense.decode_step_time(H100_80G, 1, 1000) / MIXTRAL_8X7B.decode_step_time(
        H100_80G, 1, 1000
    )
    ratio_large = dense.decode_step_time(H100_80G, 32, 32000) / MIXTRAL_8X7B.decode_step_time(
        H100_80G, 32, 32000
    )
    assert ratio_large < ratio_small


def test_moe_prefill_uses_active_params():
    dense = LLMSpec(
        "dense-47b", 46.7e9, n_layers=32, n_heads=32, n_kv_heads=8, head_dim=128
    )
    assert MIXTRAL_8X7B.prefill_time(H100_80G, 4000) < dense.prefill_time(
        H100_80G, 4000
    )


def test_mixtral_does_not_fit_a100_80g():
    """Documented constraint: FP16 Mixtral exceeds one A100-80G."""
    assert MIXTRAL_8X7B.weight_bytes > A100_80G.hbm_bytes


def test_mixtral_kv_is_gqa_small():
    # Same KV geometry as Mistral: 2 * 32 * 8 * 128 * 2.
    assert MIXTRAL_8X7B.kv_bytes_per_token == 2 * 32 * 8 * 128 * 2
