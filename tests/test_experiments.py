"""Tests for the experiment harness, report rendering and figure shapes.

These assert the *qualitative* claims of each paper figure on scaled-
down runs; the full-scale regenerations live under ``benchmarks/``.
"""

import pytest

from repro.experiments import build_consumer_rig, drain, format_table
from repro.experiments import figures as F
from repro.experiments.report import comparison_rows, summarize_requests
from repro.models import CODELLAMA_34B, MISTRAL_7B, OPT_30B, SD_15
from repro.serving import Request
from repro.workloads.arrivals import submit_all


# ---------------------------------------------------------------------------
# report.py
# ---------------------------------------------------------------------------
def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.001]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_summarize_requests():
    reqs = []
    for i in range(4):
        r = Request(arrival_time=0.0, prompt_tokens=10, max_new_tokens=5)
        r.first_token_time = 1.0 + i
        r.finish_time = 2.0 + i
        r.generated_tokens = 5
        reqs.append(r)
    s = summarize_requests(reqs, "x")
    assert s["completed"] == 4
    assert s["ttft_mean"] == 2.5
    assert s["rct_max"] == 5.0


def test_summarize_unfinished_requests():
    r = Request(arrival_time=0.0, prompt_tokens=10, max_new_tokens=5)
    s = summarize_requests([r], "x")
    assert s["completed"] == 0
    assert "ttft_mean" not in s


def test_comparison_rows():
    rows = comparison_rows(
        [{"label": "a", "x": 1}, {"label": "b"}], keys=["x"]
    )
    assert rows[0] == ["a", 1]
    assert rows[1][0] == "b"


# ---------------------------------------------------------------------------
# harness.py
# ---------------------------------------------------------------------------
def test_build_rig_vllm_baseline():
    rig = build_consumer_rig("vllm", MISTRAL_7B, use_aqua=False)
    assert rig.producer_engine is None
    assert rig.consumer_lib is None
    rig.start()


def test_build_rig_with_producer_pairs_consumer():
    rig = build_consumer_rig("cfs", CODELLAMA_34B, producer_model=SD_15)
    pairing = rig.coordinator.pairings
    assert pairing[rig.consumer_lib.name] == rig.producer_lib.name


def test_build_rig_by_model_name():
    rig = build_consumer_rig("vllm", "Mistral-7B", producer_model="StableDiffusion-1.5")
    assert rig.consumer_engine.model is MISTRAL_7B


def test_build_rig_unknown_kind():
    with pytest.raises(ValueError):
        build_consumer_rig("orca", MISTRAL_7B)


def test_flexgen_rig_has_lib_even_without_aqua():
    rig = build_consumer_rig("flexgen", OPT_30B, use_aqua=False)
    assert rig.consumer_lib is not None  # DRAM fallback path


def test_drain_returns_when_done():
    rig = build_consumer_rig("vllm", MISTRAL_7B, use_aqua=False).start()
    req = Request(arrival_time=0.0, prompt_tokens=50, max_new_tokens=20)
    submit_all(rig.env, rig.consumer_engine, [req])
    finished = drain(rig.env, [req], timeout=60)
    assert req.done
    assert finished < 60


def test_rig_warm_up_advances_clock():
    rig = build_consumer_rig("flexgen", OPT_30B, producer_model=SD_15).start()
    rig.warm_up(2.0)
    assert rig.env.now == 2.0
    assert rig.producer_lib.donated_bytes > 0


# ---------------------------------------------------------------------------
# Figure shapes (scaled down)
# ---------------------------------------------------------------------------
def test_fig01_shape():
    """CFS improves TTFT; AQUA keeps RCT near vLLM (Figure 1)."""
    result = F.fig01_motivation(rate=2.0, count=40)
    vllm = result["vllm"]["summary"]
    cfs = result["cfs-dram"]["summary"]
    aqua = result["aqua"]["summary"]
    assert cfs["ttft_p95"] < vllm["ttft_p95"] / 2
    assert aqua["ttft_p95"] < vllm["ttft_p95"] / 2
    assert cfs["rct_mean"] > vllm["rct_mean"]
    assert aqua["rct_mean"] < cfs["rct_mean"]


def test_fig02_shape():
    """Audio/vision plateau with free memory; the LLM exhausts it."""
    result = F.fig02_contention()
    for name in ("AudioGen", "StableDiffusion-1.5"):
        rows = result[name]
        assert rows[-1]["free_gib"] > 20
        mid = len(rows) // 2
        assert rows[-1]["throughput"] < 1.2 * rows[mid]["throughput"]
    llm = result["Llama-2-13B"]
    assert llm[-1]["free_gib"] < 10
    assert llm[-1]["free_gib"] < llm[0]["free_gib"]


def test_fig03a_shape():
    rows = F.fig03a_interconnect_bandwidth()["rows"]
    small, large = rows[0], rows[-1]
    assert small["nvlink_gbps"] < 2  # tiny buffers waste NVLink
    assert large["nvlink_gbps"] > 200
    assert large["nvlink_gbps"] / large["pcie_gbps"] > 5


def test_fig03b_shape():
    result = F.fig03b_sharing_impact(duration=120.0)
    assert result["impact_fraction"] < 0.08  # "<5%" in the paper


def test_fig07_shape():
    result = F.fig07_longprompt(duration=30.0)
    assert result["aqua+sd"]["speedup"] > 3
    assert result["aqua+llama"]["speedup"] > 3


def test_fig08_shape():
    result = F.fig08_lora(count=60, rate=8.0)
    base = result["baseline"]["summary"]["rct_mean"]
    aqua = result["aqua-0"]["summary"]["rct_mean"]
    assert base / aqua > 1.3  # paper: up to 1.8x


def test_fig09_shape():
    result = F.fig09_cfs(rates=(2.0,), count=40)
    systems = result[2.0]
    assert (
        systems["aqua"]["summary"]["ttft_p95"]
        < systems["vllm"]["summary"]["ttft_p95"] / 2
    )


def test_fig10_shape():
    result = F.fig10_elastic(phase1_start=10, phase2_start=40, end=100)
    free = [v for _, v in result["free_memory_gib"]]
    # Memory was donated (low) and reclaimed (high) at some point.
    assert max(free) > 2 * min(free)
    assert result["consumer_tokens_total"] > 100


def test_fig11_shape():
    result = F.fig11_producer_overhead(end=80.0, phase2_start=30.0)
    base, aqua = result["baseline"], result["aqua"]
    assert len(base) > 0 and len(aqua) > 0
    # Donation overhead is small: medians within 25%.
    mid_b = base[len(base) // 2]
    mid_a = aqua[len(aqua) // 2]
    assert mid_a < 1.25 * mid_b


def test_fig12_shape():
    result = F.fig12_tensor_size(count=60)
    assert result["320MB"]["rct_mean_saved"] > result["160MB"]["rct_mean_saved"] > 0


def test_fig13_shape():
    result = F.fig13_chatbot(n_users=20, turns=3)
    vllm = result["vllm"]["summary"]
    aqua = result["aqua"]["summary"]
    assert aqua["ttft_mean"] < vllm["ttft_mean"] / 2
    assert result["aqua"]["turns_completed"] == 60


def test_fig14_shape():
    result = F.fig14_placer_convergence(gpu_counts=(16, 32))
    rows = result["rows"]
    assert rows[0]["gpus"] == 16
    for row in rows:
        # Mixed-modality search is the harder instance (paper §A.1).
        assert row["mixed_seconds"] > row["llm5050_seconds"]
        assert row["llm5050_pairs"] == row["gpus"] // 2


def test_fig18_shape():
    result = F.fig18_nvswitch_stress(duration=20.0)
    tokens = result["per_consumer_tokens"]
    assert len(tokens) == 4
    # All four consumers sustain the 2-GPU pair's throughput.
    ref = result["two_gpu_reference_tokens"]
    for t in tokens:
        assert t > 0.8 * ref


def test_tables_inventory():
    assert len(F.table1_deficit_jobs()) == 3
    assert len(F.table2_excess_llm_jobs()) == 2
    assert len(F.table3_producer_jobs()) == 2


def test_sweep_single_point():
    from repro.experiments.sweep import sweep_request_rate, sweep_rows

    points = sweep_request_rate(rates=(2.0,), count=15)
    assert len(points) == 1
    point = points[0]
    assert point.rate == 2.0
    assert set(point.summaries) == {"vllm", "cfs-dram", "aqua"}
    assert point.ttft_gain("aqua") > 0
    rows = sweep_rows(points)
    assert len(rows) == 1 and rows[0][0] == 2.0


def test_sweep_point_metric_nan_for_missing_system_and_key():
    """Unknown system label and unknown metric key behave the same: NaN.

    Regression test — ``metric()`` used to raise ``KeyError`` for a
    missing system but return NaN for a missing key.
    """
    import math

    from repro.experiments.sweep import SweepPoint

    point = SweepPoint(rate=1.0, summaries={"aqua": {"p50_latency_s": 0.5}})
    assert point.metric("aqua", "p50_latency_s") == 0.5
    assert math.isnan(point.metric("aqua", "no_such_key"))
    assert math.isnan(point.metric("no_such_system", "p50_latency_s"))


def test_e2e_cluster_placement_matches_all_consumers():
    result = F.e2e_cluster_placement()
    assert result["balanced"]["unmatched"] == []
    assert result["llm_heavy"]["unmatched"] == []
    assert len(result["llm_heavy"]["pairs"]) == 8
