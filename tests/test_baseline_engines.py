"""Tests for the DeepSpeed-style and UVM-style offloading baselines."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.hardware import Server
from repro.models import OPT_30B, SD_15
from repro.serving import BatchEngine, DeepSpeedEngine, FlexGenEngine, Request, UVMEngine
from repro.sim import Environment
from repro.workloads import long_prompt_requests
from repro.workloads.arrivals import submit_all


def run_engine(cls, paired=False, duration=30.0, **kwargs):
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    engine = cls(
        server.gpus[0], server, OPT_30B, aqua_lib=lib, workspace_tokens=8000, **kwargs
    )
    if paired:
        producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        producer = BatchEngine(server.gpus[1], server, SD_15, aqua_lib=producer_lib)
        producer.start()
        coord.pair(lib.name, producer_lib.name)
    engine.start()
    env.run(until=1.0)
    submit_all(env, engine, long_prompt_requests(start=1.0))
    env.run(until=1.0 + duration)
    return engine


def test_deepspeed_generates_tokens():
    engine = run_engine(DeepSpeedEngine)
    assert engine.metrics.tokens_generated > 5


def test_deepspeed_slower_than_flexgen():
    """No I/O-compute overlap: DeepSpeed trails FlexGen (FlexGen's own
    evaluation, cited in §9)."""
    deepspeed = run_engine(DeepSpeedEngine)
    flexgen = run_engine(FlexGenEngine)
    assert deepspeed.metrics.tokens_generated < flexgen.metrics.tokens_generated


def test_aqua_improves_deepspeed_too():
    """§9: 'similar benefits can extend to Deepspeed'."""
    dram = run_engine(DeepSpeedEngine, paired=False)
    aqua = run_engine(DeepSpeedEngine, paired=True)
    assert aqua.metrics.tokens_generated > 3 * dram.metrics.tokens_generated


def test_uvm_generates_tokens_and_counts_faults():
    engine = run_engine(UVMEngine)
    assert engine.metrics.tokens_generated > 2
    assert engine.page_faults > 1000  # ~5.5k pages per 11 GB context read


def test_uvm_slower_than_explicit_offload_on_nvlink():
    """Page-granular migration wastes NVLink's large-transfer bandwidth:
    even with a producer GPU backing store, UVM trails AQUA's explicit
    gathered copies (why the paper built AQUA TENSORS instead)."""
    uvm = run_engine(UVMEngine, paired=True)
    aqua = run_engine(FlexGenEngine, paired=True)
    assert aqua.metrics.tokens_generated > 2 * uvm.metrics.tokens_generated


def test_uvm_on_nvlink_still_beats_uvm_on_pcie():
    pcie = run_engine(UVMEngine, paired=False)
    nvlink = run_engine(UVMEngine, paired=True)
    assert nvlink.metrics.tokens_generated > pcie.metrics.tokens_generated


def test_baselines_clean_up_tensors():
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    engine = DeepSpeedEngine(
        server.gpus[0], server, OPT_30B, aqua_lib=lib, workspace_tokens=8000
    )
    engine.start()
    req = Request(arrival_time=0.0, prompt_tokens=2000, max_new_tokens=3)
    engine.submit(req)
    env.run(until=300)
    assert req.done
    assert lib.tensors == {}
