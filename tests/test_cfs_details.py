"""Focused tests for CFS scheduling internals."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.hardware import Server
from repro.models import CODELLAMA_34B, KANDINSKY, MISTRAL_7B
from repro.serving import BatchEngine, CFSEngine, Request
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def make_cfs(use_aqua=False, slice_tokens=5, **kwargs):
    env = Environment()
    server = Server(env, n_gpus=2)
    aqua_lib = None
    if use_aqua:
        coord = Coordinator()
        aqua_lib = AquaLib(server.gpus[0], server, coord)
        producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        producer = BatchEngine(server.gpus[1], server, KANDINSKY, aqua_lib=producer_lib)
        producer.start()
        coord.pair(aqua_lib.name, producer_lib.name)
    engine = CFSEngine(
        server.gpus[0],
        server,
        CODELLAMA_34B,
        use_aqua=use_aqua,
        aqua_lib=aqua_lib,
        slice_tokens=slice_tokens,
        **kwargs,
    )
    engine.start()
    return env, engine


def test_cfs_single_request_no_switching():
    """A lone request that fits never context-switches."""
    env, engine = make_cfs()
    req = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=20)
    engine.submit(req)
    env.run(until=60)
    assert req.done
    assert engine.context_switch_time == 0.0


def test_cfs_all_fit_no_switching():
    """When every live prompt fits in KV memory, CFS degenerates to
    continuous batching: zero switch overhead."""
    env, engine = make_cfs()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=200, max_new_tokens=30)
        for _ in range(8)
    ]
    submit_all(env, engine, requests)
    env.run(until=120)
    assert all(r.done for r in requests)
    assert engine.context_switch_time == 0.0


def test_cfs_pressure_triggers_switching():
    env, engine = make_cfs()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=50)
        for _ in range(20)
    ]
    submit_all(env, engine, requests)
    env.run(until=600)
    assert all(r.done for r in requests)
    assert engine.context_switch_time > 0
    assert engine.slices_run > 0


def test_cfs_least_progress_first():
    """A late arrival with zero progress preempts long-running prompts."""
    env, engine = make_cfs()
    # Fill memory with big prompts.
    hogs = [
        Request(arrival_time=0.0, prompt_tokens=3500, max_new_tokens=300)
        for _ in range(12)
    ]
    submit_all(env, engine, hogs)
    late = Request(arrival_time=10.0, prompt_tokens=200, max_new_tokens=20)
    submit_all(env, engine, [late])
    env.run(until=600)
    assert late.done
    # The late arrival got service well before the hogs finished.
    assert late.first_token_time < max(h.finish_time for h in hogs if h.done)
    assert late.ttft < 20


def test_cfs_swap_roundtrip_preserves_progress():
    env, engine = make_cfs()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=40)
        for _ in range(16)
    ]
    submit_all(env, engine, requests)
    env.run(until=900)
    for r in requests:
        assert r.done
        assert r.generated_tokens == r.max_new_tokens


def test_cfs_dram_bookkeeping_clean_after_run():
    env, engine = make_cfs()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=30)
        for _ in range(16)
    ]
    submit_all(env, engine, requests)
    env.run(until=900)
    assert all(r.done for r in requests)
    assert not engine._dram_tags
    assert not engine.swapped
    # No context bytes leaked in host DRAM.
    leftovers = [
        tag for tag in engine.server.dram.pool.reservations if tag.startswith("cfs")
    ]
    assert leftovers == []


def test_cfs_aqua_tensors_freed_after_run():
    env, engine = make_cfs(use_aqua=True)
    requests = [
        Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=30)
        for _ in range(16)
    ]
    env.run(until=1)  # producer donates
    submit_all(env, engine, requests)
    env.run(until=900)
    assert all(r.done for r in requests)
    assert engine._swap_tensors == {}
    assert engine.aqua_lib.tensors == {}


def test_cfs_oversized_waiting_request_rejected():
    env, engine = make_cfs()
    huge = Request(arrival_time=0.0, prompt_tokens=100_000, max_new_tokens=10)
    engine.submit(huge)
    env.run(until=10)
    assert not huge.done
    assert huge not in engine.waiting


def test_cfs_slice_length_controls_switch_frequency():
    def switches(slice_tokens):
        env, engine = make_cfs(slice_tokens=slice_tokens)
        requests = [
            Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=40)
            for _ in range(16)
        ]
        submit_all(env, engine, requests)
        env.run(until=900)
        return engine.context_switch_time

    assert switches(2) > switches(16)


def test_cfs_interleaves_two_classes_fairly():
    """Short prompts are not starved behind long generations."""
    env, engine = make_cfs()
    long_jobs = [
        Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=200)
        for _ in range(10)
    ]
    short_jobs = [
        Request(arrival_time=5.0, prompt_tokens=300, max_new_tokens=10)
        for _ in range(5)
    ]
    submit_all(env, engine, long_jobs)
    submit_all(env, engine, short_jobs)
    env.run(until=900)
    assert all(r.done for r in short_jobs)
    short_done = max(r.finish_time for r in short_jobs)
    long_done = max(r.finish_time for r in long_jobs if r.done)
    assert short_done < long_done
