"""Tests for metric collection and percentile math."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import MetricsCollector, Request, TimeSeries, percentile


def test_percentile_basics():
    values = [1, 2, 3, 4, 5]
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == 3
    assert percentile(values, 100) == 5


def test_percentile_interpolates():
    assert percentile([0, 10], 50) == 5
    assert percentile([0, 10], 25) == 2.5


def test_percentile_single_value():
    assert percentile([7], 95) == 7


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)
    with pytest.raises(ValueError):
        percentile([1], -1)


def test_percentile_extremes_on_unsorted_input():
    """q=0/100 are exactly min/max, whatever the input order."""
    values = [9, 1, 7, 3]
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 9
    assert values == [9, 1, 7, 3]  # input is not mutated


def test_percentile_two_element_interpolation():
    assert percentile([0, 10], 0) == 0
    assert percentile([0, 10], 75) == 7.5
    assert percentile([0, 10], 100) == 10
    assert percentile([10, 0], 50) == 5  # order-insensitive


def test_percentile_fractional_q():
    assert percentile([0, 10], 12.5) == pytest.approx(1.25)
    assert percentile([1, 2, 3, 4, 5], 62.5) == pytest.approx(3.5)


def test_percentile_exact_rank_needs_no_interpolation():
    # q=25 on 5 elements lands exactly on index 1.
    assert percentile([5, 4, 3, 2, 1], 25) == 2


def test_percentile_duplicate_values():
    assert percentile([2, 2, 2, 2], 50) == 2
    assert percentile([1, 2, 2, 3], 50) == 2


@given(
    values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    q=st.floats(min_value=0, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_percentile_bounded_by_extremes(values, q):
    """Property: any percentile lies between min and max."""
    p = percentile(values, q)
    assert min(values) - 1e-9 <= p <= max(values) + 1e-9


def test_timeseries_append_ordered():
    ts = TimeSeries("x")
    ts.append(1.0, 10)
    ts.append(2.0, 20)
    assert len(ts) == 2
    assert ts.last() == 20
    with pytest.raises(ValueError):
        ts.append(0.5, 5)


def test_timeseries_window_sum():
    ts = TimeSeries("x")
    for t in range(10):
        ts.append(float(t), 1.0)
    assert ts.window_sum(2, 5) == 3.0


def test_timeseries_window_sum_half_open_boundaries():
    ts = TimeSeries("x")
    ts.append(1.0, 10.0)
    ts.append(2.0, 20.0)
    ts.append(3.0, 40.0)
    assert ts.window_sum(1.0, 3.0) == 30.0  # start inclusive, end exclusive
    assert ts.window_sum(3.0, 3.0) == 0.0   # empty window
    assert ts.window_sum(0.0, 0.5) == 0.0   # before all samples
    assert ts.window_sum(5.0, 9.0) == 0.0   # after all samples
    assert ts.window_sum(0.0, 100.0) == 70.0
    assert ts.window_sum(4.0, 1.0) == 0.0   # inverted window sums nothing


def test_timeseries_window_sum_with_duplicate_times():
    ts = TimeSeries("x")
    ts.append(1.0, 1.0)
    ts.append(2.0, 2.0)
    ts.append(2.0, 3.0)  # equal timestamps are legal (ordering is >=)
    ts.append(2.0, 4.0)
    ts.append(3.0, 8.0)
    assert ts.window_sum(2.0, 3.0) == 9.0   # all three samples at t=2
    assert ts.window_sum(2.0, 2.0) == 0.0


@given(
    times=st.lists(st.floats(0, 100, allow_nan=False), min_size=0, max_size=40),
    start=st.floats(-10, 110, allow_nan=False),
    width=st.floats(0, 50, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_timeseries_window_sum_matches_linear_scan(times, start, width):
    """The bisect implementation agrees with the obvious linear scan."""
    ts = TimeSeries("x")
    for i, t in enumerate(sorted(times)):
        ts.append(t, float(i))
    end = start + width
    expected = sum(v for t, v in zip(ts.times, ts.values) if start <= t < end)
    assert ts.window_sum(start, end) == expected


def finished_request(arrival, first, finish, tokens=10):
    r = Request(arrival_time=arrival, prompt_tokens=5, max_new_tokens=tokens)
    r.first_token_time = first
    r.finish_time = finish
    r.generated_tokens = tokens
    return r


def test_collector_latency_stats():
    m = MetricsCollector("test")
    m.record_completion(finished_request(0, 1, 5))
    m.record_completion(finished_request(0, 3, 9))
    assert m.ttfts == [1, 3]
    assert m.rcts == [5, 9]
    assert m.mean_ttft() == 2
    assert m.rct_percentile(100) == 9
    assert m.sorted_rcts() == [5, 9]


def test_collector_throughput_window():
    m = MetricsCollector("test")
    for t in [0.5, 1.5, 2.5, 3.5]:
        m.record_token(t)
    assert m.tokens_in_window(1, 3) == 2
    assert m.throughput(0, 4) == 1.0
    with pytest.raises(ValueError):
        m.throughput(4, 4)


def test_collector_summary():
    m = MetricsCollector("summary")
    m.record_completion(finished_request(0, 1, 2))
    m.record_token(1.0, n=3)
    s = m.summary()
    assert s["name"] == "summary"
    assert s["completed"] == 1
    assert s["tokens"] == 3
    assert s["ttft_mean"] == 1


def test_collector_empty_summary():
    s = MetricsCollector("empty").summary()
    assert "ttft_mean" not in s
    assert math.isnan(MetricsCollector("empty").mean_rct())


def test_collector_empty_aggregates_all_return_nan():
    """Regression: percentiles used to raise ValueError on an idle
    collector while the means returned NaN.  Every collector aggregate
    now follows the same empty-input contract."""
    m = MetricsCollector("idle")
    assert math.isnan(m.mean_ttft())
    assert math.isnan(m.mean_rct())
    assert math.isnan(m.ttft_percentile(50))
    assert math.isnan(m.rct_percentile(95))
    # The standalone utility stays strict: empty there is a caller bug.
    with pytest.raises(ValueError):
        percentile([], 50)


def test_request_lifecycle():
    r = Request(arrival_time=1.0, prompt_tokens=10, max_new_tokens=2)
    assert not r.done
    assert r.ttft is None and r.rct is None
    r.record_token(3.0)
    assert r.ttft == 2.0
    assert not r.done
    r.record_token(4.0)
    assert r.done
    assert r.rct == 3.0
    assert r.total_tokens == 12


def test_request_validation():
    with pytest.raises(ValueError):
        Request(arrival_time=0, prompt_tokens=0, max_new_tokens=1)
    with pytest.raises(ValueError):
        Request(arrival_time=0, prompt_tokens=1, max_new_tokens=0)


def test_timeseries_non_monotonic_error_names_offending_times():
    """The guard's message must name the series and both timestamps —
    a scraper driven by the simulation clock can only trip this through
    a real bug, and the message is the debugging entry point."""
    ts = TimeSeries("goodput")
    ts.append(3.0, 1.0)
    with pytest.raises(ValueError, match=r"'goodput'.*t=2\.5 precedes last sample t=3\.0"):
        ts.append(2.5, 2.0)
    # The rejected sample was not retained.
    assert len(ts) == 1


def test_timeseries_equal_timestamps_are_legal():
    ts = TimeSeries("x")
    ts.append(1.0, 1.0)
    ts.append(1.0, 2.0)  # ordering contract is >=, not >
    assert len(ts) == 2


def test_collector_sample_inherits_monotonic_guard():
    """MetricsCollector.sample delegates to TimeSeries.append, so the
    same non-monotonic protection applies per named series."""
    mc = MetricsCollector("eng")
    mc.sample("queue_depth", 1.0, 4.0)
    mc.sample("queue_depth", 2.0, 5.0)
    mc.sample("batch_size", 0.5, 1.0)  # independent series, own clock
    with pytest.raises(ValueError, match="queue_depth"):
        mc.sample("queue_depth", 1.5, 6.0)
    assert mc.series["queue_depth"].last() == 5.0
