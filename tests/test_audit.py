"""Self-tests for the conservation auditor (repro.audit).

Two kinds of coverage: a clean simulation must audit clean (no false
positives, even under fault injection), and deliberately corrupted
ledgers must be flagged (no false negatives) — a double-released pool
tag, a phantom reservation, a forged channel counter.
"""

import json

import pytest

from repro.aqua import AquaLib, Coordinator, EngineStats, LlmInformer
from repro.aqua.lib import AQUA_OFFER_TAG
from repro.audit import LAWS, AuditError, ConservationAuditor
from repro.faults import DmaStall, FaultInjector, FaultSchedule, GpuFailure
from repro.hardware import Server
from repro.hardware.specs import GiB, MB
from repro.sim import Environment


def make_audited_rig(offer_bytes=10 * GiB, interval=None):
    """The standard 2-GPU consumer/producer rig with an auditor attached.

    ``interval=None`` checks after every simulation event — the most
    aggressive (and most false-positive-prone) mode.
    """
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    coord = Coordinator()
    consumer = AquaLib(server.gpus[0], server, coord)
    producer = AquaLib(server.gpus[1], server, coord)
    coord.pair(consumer.name, producer.name)
    if offer_bytes:
        producer.complete_offer(offer_bytes)
    auditor = ConservationAuditor(env)
    auditor.attach_server(server)
    auditor.attach_coordinator(coord)
    auditor.watch(interval=interval)
    return env, server, coord, consumer, producer, auditor


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def churn(env, consumer):
    """Allocate, fetch, flush and free a few tensors (clean activity)."""
    tensors = [consumer.to_responsive_tensor((i + 1) * 64 * MB) for i in range(4)]
    for t in tensors:
        run(env, t.fetch())
    run(env, tensors[0].flush())
    tensors[1].free()
    return tensors


# ---------------------------------------------------------------------------
# No false positives
# ---------------------------------------------------------------------------
def test_clean_run_audits_clean_per_event():
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    churn(env, consumer)
    assert auditor.check(checkpoint="final") == []
    report = auditor.report()
    assert report.ok
    assert report.checks > 1  # the per-event monitor fired during the run
    assert report.transfers_observed >= 5
    auditor.raise_if_violations()  # must not raise


def test_clean_reclaim_cycle_audits_clean():
    """The full donate -> allocate -> reclaim -> evacuate -> return cycle."""
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    t = consumer.to_responsive_tensor(2 * GiB)
    producer.informer = LlmInformer(queue_high=4)
    stats = EngineStats(now=0.0, pending_requests=100, offerable_bytes=0)
    producer.inform_stats(stats)  # starts the reclaim
    run(env, consumer.respond())  # evacuates the tensor to DRAM
    producer.inform_stats(stats)  # completes the reclaim
    t.free()
    assert auditor.check(checkpoint="final") == []
    assert auditor.report().ok


def test_fault_injected_run_audits_clean():
    """Stalls, retries and a GPU failure must not desynchronize any
    ledger the auditor watches (lost tensors reconcile lazily but the
    books stay mutually consistent)."""
    env, server, coord, consumer, producer, auditor = make_audited_rig(
        interval=0.5
    )
    injector = FaultInjector(server, coordinator=coord)
    injector.install(
        FaultSchedule(
            [
                DmaStall(at=0.02, channel="nvlink:gpu1->gpu0", duration=0.3),
                GpuFailure(at=1.0, gpu="gpu1", duration=1.0),
            ]
        )
    )
    t = consumer.to_responsive_tensor(1 * GiB)

    def workload(env):
        yield env.timeout(0.05)
        yield from t.fetch()  # rides out the stall via retries

    env.process(workload(env))
    env.run(until=3.0)
    assert consumer.retries > 0
    assert auditor.check(checkpoint="final") == []
    assert auditor.report().ok


# ---------------------------------------------------------------------------
# No false negatives: corrupted ledgers are flagged
# ---------------------------------------------------------------------------
def test_double_release_detected():
    """Releasing a live tensor's reservation behind the library's back
    breaks tensor-vs-pool conservation."""
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    t = consumer.to_responsive_tensor(1 * GiB)
    producer.gpu.hbm.release(t.tag)  # the corruption
    violations = auditor.check(checkpoint="corrupt")
    assert any(
        v.law == "pool-conservation" and v.subject == t.tag for v in violations
    )


def test_phantom_reservation_detected():
    """A tensor-shaped reservation with no tensor and no allocation
    behind it is an orphan (e.g. a leaked rollback)."""
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    consumer.to_responsive_tensor(64 * MB)
    server.dram.pool.reserve("aqua#9999", 123)  # the corruption
    violations = auditor.check(checkpoint="corrupt")
    assert any(
        v.law == "pool-conservation" and "aqua#9999" in v.message
        for v in violations
    )


def test_forged_channel_counter_detected():
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    t = consumer.to_responsive_tensor(64 * MB)
    run(env, t.fetch())
    channel = next(iter(server.interconnect.channels.values()))
    channel.bytes_moved += 1.0  # the corruption
    violations = auditor.check(checkpoint="corrupt")
    assert any(
        v.law == "byte-conservation" and v.subject == channel.name
        for v in violations
    )


def test_forged_transfer_stats_detected():
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    t = consumer.to_responsive_tensor(64 * MB)
    run(env, t.fetch())
    server.transfer_stats.count += 1  # the corruption
    violations = auditor.check(checkpoint="corrupt")
    assert any(
        v.law == "byte-conservation" and v.subject == "TransferStats"
        for v in violations
    )


def test_lease_vs_offer_tag_mismatch_detected():
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    producer.gpu.hbm.release(AQUA_OFFER_TAG, 1)  # the corruption
    violations = auditor.check(checkpoint="corrupt")
    assert any(
        v.law == "pool-conservation" and v.subject == producer.name
        for v in violations
    )


def test_strict_mode_raises_at_the_checkpoint():
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    auditor.strict = True
    server.dram.pool.reserve("aqua#777", 1)
    with pytest.raises(AuditError) as exc:
        auditor.check(checkpoint="boom")
    assert "aqua#777" in str(exc.value)
    assert exc.value.violations


# ---------------------------------------------------------------------------
# Determinism digest
# ---------------------------------------------------------------------------
def _digest_of_run():
    env, server, coord, consumer, producer, auditor = make_audited_rig(
        interval=0.25
    )
    churn(env, consumer)
    env.run(until=2.0)
    auditor.check(checkpoint="final")
    return auditor.report()


def test_identical_runs_produce_identical_digests():
    a = _digest_of_run()
    b = _digest_of_run()
    assert a.ok and b.ok
    assert a.digest == b.digest
    assert len(a.digest) == 64  # hex SHA-256


def test_different_runs_produce_different_digests():
    a = _digest_of_run()
    env, server, coord, consumer, producer, auditor = make_audited_rig(
        interval=0.25
    )
    t = consumer.to_responsive_tensor(32 * MB)  # different workload
    run(env, t.fetch())
    env.run(until=2.0)
    auditor.check(checkpoint="final")
    assert auditor.report().digest != a.digest


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------
def test_report_is_json_safe():
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    server.dram.pool.reserve("aqua#31337", 7)
    auditor.check(checkpoint="corrupt")
    payload = auditor.report().to_dict()
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["ok"] is False
    assert round_tripped["violations"]
    assert round_tripped["digest"] == auditor.report().digest


def test_laws_are_documented():
    assert LAWS == (
        "byte-conservation",
        "pool-conservation",
        "placement",
        "determinism",
    )


def test_unwatch_stops_the_event_monitor():
    env, server, coord, consumer, producer, auditor = make_audited_rig()
    churn(env, consumer)
    checks_before = auditor.checks
    auditor.unwatch()
    t = consumer.to_responsive_tensor(16 * MB)
    run(env, t.fetch())
    assert auditor.checks == checks_before
