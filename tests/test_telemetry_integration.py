"""End-to-end tests of the unified telemetry layer.

These drive real rigs (the Figure 7 FlexGen/NVLink pair) and check the
three pillars together: causal flow tracing across subsystem tracks,
the labeled metrics registry, and latency attribution — plus the
headline guarantee that telemetry is observation-only (audit digests
are identical with it on or off).
"""

import json

import pytest

from repro.experiments.harness import build_consumer_rig
from repro.experiments.observe import observe_experiment
from repro.faults import DmaStall, FaultInjector, FaultSchedule
from repro.models import LLAMA2_13B, OPT_30B
from repro.telemetry import capture_trace, parse_prometheus_text
from repro.workloads.arrivals import submit_all
from repro.workloads.longprompt import long_prompt_requests


@pytest.fixture(scope="module")
def observe_result():
    """One shared telemetered run (the `aqua-repro observe` scenario)."""
    return observe_experiment(duration=25.0)


# ---------------------------------------------------------------------------
# Pillar 1: request-scoped causal tracing
# ---------------------------------------------------------------------------
def test_flow_chain_crosses_subsystem_tracks(observe_result):
    tm = observe_result["telemetry"]
    long_prompt = observe_result["consumer_requests"][0]
    chain = [f for f in tm.tracer.flows if f.flow_id == long_prompt.req_id]
    assert chain, "the long-prompt request left no flow events"

    tracks = {f.track for f in chain}
    assert any(t.startswith("link:") for t in tracks), tracks
    assert any(t.startswith("aqua:") for t in tracks), tracks
    assert any(not t.startswith(("link:", "aqua:")) for t in tracks), tracks

    # Exactly one start; a finish only once the request completed.
    phases = [f.phase for f in sorted(chain, key=lambda f: f.time)]
    assert phases[0] == "s"
    assert phases.count("s") == 1
    if long_prompt.done:
        assert phases[-1] == "f"


def test_critical_path_reconstructs_the_journey(observe_result):
    tm = observe_result["telemetry"]
    long_prompt = observe_result["consumer_requests"][0]
    path = tm.tracer.critical_path(long_prompt.req_id)
    assert len(path) >= 2, "critical path did not chain multiple spans"
    # The journey touches at least the engine and the DMA links.
    path_tracks = {span.track for span in path}
    assert any(t.startswith("link:") for t in path_tracks)
    # No immediate repeats, and causal order holds within each track
    # (concurrent DMA hops on different links may interleave globally).
    assert all(a is not b for a, b in zip(path, path[1:]))
    for track in path_tracks:
        starts = [span.start for span in path if span.track == track]
        assert starts == sorted(starts)


def test_trace_export_has_flow_events(observe_result, tmp_path):
    tm = observe_result["telemetry"]
    path = tmp_path / "trace.json"
    tm.tracer.export_json(str(path))
    events = json.loads(path.read_text())["traceEvents"]
    flows = [e for e in events if e.get("ph") in ("s", "t", "f")]
    assert len(flows) >= 1
    assert all(e["cat"] == "flow" and "id" in e for e in flows)
    # Finish events bind to the enclosing slice.
    assert all(e.get("bp") == "e" for e in flows if e["ph"] == "f")


# ---------------------------------------------------------------------------
# Pillar 2: the metrics registry, fully populated
# ---------------------------------------------------------------------------
def test_prometheus_export_covers_all_families(observe_result):
    samples = parse_prometheus_text(observe_result["prometheus"])
    # engine family
    assert samples["aqua_engine_tokens_generated_total"]
    assert samples["aqua_engine_requests_completed_total"]
    assert samples["aqua_engine_ttft_seconds_count"]
    # pool family (live callback gauges)
    assert samples["aqua_pool_used_bytes"]
    assert samples["aqua_pool_peak_bytes"]
    # link family
    assert samples["aqua_link_bytes_total"]
    assert samples["aqua_link_transfers_total"]
    # AQUA + fault families
    assert samples["aqua_offload_bytes_total"]
    assert samples["aqua_faults_total"]

    faults = {tuple(sorted(labels.items())) for labels, _ in samples["aqua_faults_total"]}
    assert (("kind", "dma-stall"), ("phase", "apply")) in faults


def test_metrics_agree_with_engine_counters(observe_result):
    samples = parse_prometheus_text(observe_result["prometheus"])
    consumer_tokens = sum(
        value
        for labels, value in samples["aqua_engine_tokens_generated_total"]
        if labels["engine"].startswith("flexgen")
    )
    assert consumer_tokens == observe_result["tokens_total"]


def test_pool_gauges_read_live_state(observe_result):
    tm = observe_result["telemetry"]
    used = {
        labels["device"]: value
        for labels, value in parse_prometheus_text(tm.prometheus_text())[
            "aqua_pool_used_bytes"
        ]
    }
    # The producer donated memory: some pool is non-empty right now.
    assert any(v > 0 for v in used.values())


# ---------------------------------------------------------------------------
# Pillar 3: latency attribution
# ---------------------------------------------------------------------------
def test_component_sums_equal_end_to_end_latency(observe_result):
    report = observe_result["report"]
    assert report["count"] >= 1
    for entry in report["requests"]:
        total = sum(entry["components"].values())
        assert total == pytest.approx(entry["rct"], abs=1e-9), entry
        assert sum(entry["ttft_components"].values()) == pytest.approx(
            entry["ttft"], abs=1e-9
        )


def test_long_prompt_request_fetches_through_aqua(observe_result):
    report = observe_result["report"]
    long_prompt = observe_result["consumer_requests"][0]
    entry = next(
        e for e in report["requests"] if e["req_id"] == long_prompt.req_id
    )
    # A FlexGen request streams its KV per token: offload time dominates
    # or at least registers.
    assert entry["components"]["offload_fetch"] > 0


# ---------------------------------------------------------------------------
# The observation-only guarantee
# ---------------------------------------------------------------------------
def _digest_of_run(telemetry: bool) -> tuple[str, int]:
    rig = build_consumer_rig(
        "flexgen",
        OPT_30B,
        producer_model=LLAMA2_13B,
        use_aqua=True,
        telemetry=telemetry,
        audit=True,
    )
    injector = FaultInjector(
        rig.server, coordinator=rig.coordinator, telemetry=rig.telemetry
    )
    injector.install(
        FaultSchedule([DmaStall(at=8.0, channel="nvlink:gpu1->gpu0", duration=2.0)])
    )
    rig.start()
    requests = long_prompt_requests(start=2.0, max_new_tokens=30)
    submit_all(rig.env, rig.consumer_engine, requests)
    rig.env.run(until=18.0)
    rig.auditor.check(checkpoint="final")
    report = rig.auditor.report().to_dict()
    assert report["ok"], report["violations"]
    return report["digest"], rig.consumer_engine.metrics.tokens_generated


def test_telemetry_is_observation_only():
    """Audit digests (and token counts) match with telemetry on vs off."""
    digest_off, tokens_off = _digest_of_run(telemetry=False)
    digest_on, tokens_on = _digest_of_run(telemetry=True)
    assert tokens_on == tokens_off
    assert digest_on == digest_off


# ---------------------------------------------------------------------------
# Ambient capture (the uniform CLI --trace path)
# ---------------------------------------------------------------------------
def test_capture_trace_adopts_tracerless_engines(tmp_path):
    path = tmp_path / "ambient.json"
    with capture_trace(str(path)) as tracer:
        rig = build_consumer_rig(
            "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True
        ).start()
        assert rig.consumer_engine.tracer is tracer
        submit_all(rig.env, rig.consumer_engine, long_prompt_requests(start=1.0))
        rig.env.run(until=8.0)
    assert len(tracer.spans) >= 1
    events = json.loads(path.read_text())["traceEvents"]
    assert any(e["ph"] == "X" for e in events)


def test_capture_trace_does_not_override_explicit_tracer():
    from repro.trace import Tracer

    own = Tracer(clock=lambda: 0.0)
    with capture_trace():
        rig = build_consumer_rig(
            "vllm", LLAMA2_13B, consumer_kwargs={"tracer": own}
        )
        assert rig.consumer_engine.tracer is own


def test_capture_trace_exports_even_on_error(tmp_path):
    path = tmp_path / "partial.json"
    with pytest.raises(RuntimeError):
        with capture_trace(str(path)) as tracer:
            tracer.add_span("work", "t", 0.0, 1.0)
            raise RuntimeError("boom")
    assert json.loads(path.read_text())["traceEvents"]
