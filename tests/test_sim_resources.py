"""Unit and property tests for simulation resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store
from repro.sim.resources import PriorityResource


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, name):
        with res.request() as req:
            yield req
            granted.append((name, env.now))
            yield env.timeout(10)

    for name in "abc":
        env.process(user(env, name))
    env.run()
    assert granted == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_count_tracks_usage():
    env = Environment()
    res = Resource(env, capacity=3)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    for _ in range(2):
        env.process(user(env))
    env.run(until=1)
    assert res.count == 2
    env.run()
    assert res.count == 0


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name, start):
        yield env.timeout(start)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(100)

    env.process(user(env, "first", 0))
    env.process(user(env, "second", 1))
    env.process(user(env, "third", 2))
    env.run()
    assert order == ["first", "second", "third"]


def test_priority_resource_serves_low_priority_number_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def user(env, name, priority):
        yield env.timeout(1)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)

    env.process(holder(env))
    env.process(user(env, "low-pri", 5))
    env.process(user(env, "high-pri", 1))
    env.run()
    assert order == ["high-pri", "low-pri"]


def test_release_unknown_request_is_noop():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    res.release(req)  # double release must not corrupt state
    assert res.count == 0


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    env.process(holder(env))
    env.run(until=1)
    queued = res.request()
    assert not queued.triggered
    queued.cancel()
    env.run()
    assert res.count == 0
    assert not queued.triggered


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(1, 0), (2, 1), (3, 2)]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(9)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(9, "x")]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        log.append((f"got-{item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0) in log
    assert ("put-b", 5) in log


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_size():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert store.size == 2


def test_store_cancel_get():
    env = Environment()
    store = Store(env)
    get_ev = store.get()
    store.cancel_get(get_ev)
    store.put("x")
    env.run()
    assert not get_ev.triggered
    assert store.size == 1


@given(
    holds=st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    """Property: at no point do more than `capacity` users hold the resource."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = [0]

    def user(env, hold):
        with res.request() as req:
            yield req
            max_seen[0] = max(max_seen[0], res.count)
            yield env.timeout(hold)

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert max_seen[0] <= capacity
    assert res.count == 0


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_order(items):
    """Property: items come out of a store in the order they went in."""
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            item = yield store.get()
            out.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == items


@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30
    )
)
@settings(max_examples=50, deadline=None)
def test_clock_is_monotonic(delays):
    """Property: observed simulation times never decrease."""
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    def chained(env):
        for delay in delays:
            yield env.timeout(delay)
            observed.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.process(chained(env))
    env.run()
    assert observed == sorted(observed)
