"""Tests for workload generators."""

import numpy as np
import pytest

from repro.models import synthesize_adapters
from repro.workloads import (
    ShareGPTSampler,
    long_prompt_requests,
    lora_requests,
    poisson_arrival_times,
    producer_requests,
    sharegpt_requests,
)


def test_poisson_rate_roughly_matches():
    rng = np.random.default_rng(0)
    times = poisson_arrival_times(rng, rate=5.0, count=5000)
    measured = len(times) / times[-1]
    assert 4.5 < measured < 5.5


def test_poisson_times_increasing():
    rng = np.random.default_rng(1)
    times = poisson_arrival_times(rng, rate=2.0, count=100)
    assert all(b > a for a, b in zip(times, times[1:]))


def test_poisson_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        poisson_arrival_times(rng, rate=0, count=10)
    with pytest.raises(ValueError):
        poisson_arrival_times(rng, rate=1, count=-1)


def test_poisson_start_offset():
    rng = np.random.default_rng(0)
    times = poisson_arrival_times(rng, rate=1.0, count=10, start=100.0)
    assert times[0] > 100.0


def test_sharegpt_lengths_in_range():
    sampler = ShareGPTSampler(seed=0)
    for _ in range(500):
        prompt, response = sampler.sample()
        assert 8 <= prompt <= 2048
        assert 4 <= response <= 1024


def test_sharegpt_median_realistic():
    sampler = ShareGPTSampler(seed=0)
    prompts, responses = zip(*(sampler.sample() for _ in range(2000)))
    assert 100 < np.median(prompts) < 260
    assert 130 < np.median(responses) < 320


def test_sharegpt_deterministic_by_seed():
    a = sharegpt_requests(rate=5, count=20, seed=42)
    b = sharegpt_requests(rate=5, count=20, seed=42)
    assert [(r.arrival_time, r.prompt_tokens, r.max_new_tokens) for r in a] == [
        (r.arrival_time, r.prompt_tokens, r.max_new_tokens) for r in b
    ]


def test_sharegpt_seeds_differ():
    a = sharegpt_requests(rate=5, count=20, seed=1)
    b = sharegpt_requests(rate=5, count=20, seed=2)
    assert [r.prompt_tokens for r in a] != [r.prompt_tokens for r in b]


def test_long_prompt_defaults():
    (req,) = long_prompt_requests()
    assert req.prompt_tokens == 8000
    assert req.max_new_tokens >= 10_000


def test_long_prompt_validation():
    with pytest.raises(ValueError):
        long_prompt_requests(count=0)


def test_lora_random_assignment_has_repeats():
    adapters = synthesize_adapters(5, 320 * 10**6)
    requests = lora_requests(adapters, rate=5, count=100, seed=0)
    names = [r.adapter.name for r in requests]
    assert len(set(names)) == 5  # all adapters used, with repeats


def test_lora_unique_assignment_cycles():
    adapters = synthesize_adapters(10, 160 * 10**6)
    requests = lora_requests(adapters, rate=5, count=20, seed=0, unique_assignment=True)
    names = [r.adapter.name for r in requests]
    assert names[:10] == [a.name for a in adapters]
    assert names[10:] == [a.name for a in adapters]


def test_lora_empty_pool_rejected():
    with pytest.raises(ValueError):
        lora_requests([], rate=1, count=1)


def test_lora_fixed_response_tokens():
    adapters = synthesize_adapters(2, 10**6)
    requests = lora_requests(adapters, rate=1, count=5, response_tokens=64)
    assert all(r.max_new_tokens == 64 for r in requests)


def test_producer_requests_unit_jobs():
    requests = producer_requests(rate=2.0, count=50, seed=0)
    assert len(requests) == 50
    assert all(r.max_new_tokens == 1 for r in requests)


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    rate=st.floats(min_value=0.1, max_value=50),
    count=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_sharegpt_requests_always_valid(rate, count, seed):
    """Property: every generated request is well-formed and ordered."""
    requests = sharegpt_requests(rate=rate, count=count, seed=seed)
    assert len(requests) == count
    times = [r.arrival_time for r in requests]
    assert times == sorted(times)
    for r in requests:
        assert r.prompt_tokens >= 1
        assert r.max_new_tokens >= 1


@given(
    n_adapters=st.integers(min_value=1, max_value=50),
    count=st.integers(min_value=1, max_value=100),
    unique=st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_lora_requests_always_draw_from_pool(n_adapters, count, unique):
    """Property: every request's adapter comes from the given pool."""
    adapters = synthesize_adapters(n_adapters, 10**6)
    pool = {a.name for a in adapters}
    requests = lora_requests(
        adapters, rate=5.0, count=count, seed=1, unique_assignment=unique
    )
    assert all(r.adapter.name in pool for r in requests)
