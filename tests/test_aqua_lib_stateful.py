"""Stateful property testing of AQUA-LIB's memory accounting.

Random interleavings of donations, reclaims, tensor allocation/free and
respond() must keep the producer's HBM pool, the coordinator's lease
books and the consumer's tensor registry mutually consistent — the
invariants behind "transparent and elastic" memory management.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.aqua import AquaLib, Coordinator
from repro.aqua.lib import AQUA_OFFER_TAG
from repro.aqua.tensor import Location
from repro.hardware import Server
from repro.hardware.specs import MB
from repro.sim import Environment


class AquaLibMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.server = Server(self.env, n_gpus=2)
        self.coord = Coordinator()
        self.consumer = AquaLib(self.server.gpus[0], self.server, self.coord)
        self.producer = AquaLib(self.server.gpus[1], self.server, self.coord)
        self.coord.pair(self.consumer.name, self.producer.name)
        self.tensors = []

    def _drive(self, gen):
        proc = self.env.process(gen)
        self.env.run(until=proc)

    # ------------------------------------------------------------------
    @rule(nbytes=st.integers(min_value=1, max_value=500) )
    def offer(self, nbytes):
        if self.producer.reclaim_pending:
            return
        self.producer.complete_offer(nbytes * MB)

    @rule()
    def reclaim(self):
        if self.producer.donated_bytes == 0 or self.producer.reclaim_pending:
            return
        body = self.coord.request(
            "POST", "/reclaim_request", {"producer": self.producer.name}
        ).body
        if body.get("done"):
            self.producer._finish_reclaim()
        else:
            self.producer.reclaim_pending = True

    @rule()
    def poll_reclaim(self):
        if not self.producer.reclaim_pending:
            return
        body = self.coord.request(
            "GET", "/reclaim_status", {"producer": self.producer.name}
        ).body
        if body["done"]:
            self.producer._finish_reclaim()

    @rule(nbytes=st.integers(min_value=1, max_value=200))
    def allocate(self, nbytes):
        tensor = self.consumer.to_responsive_tensor(nbytes * MB)
        self.tensors.append(tensor)

    @rule(data=st.data())
    def free(self, data):
        live = [t for t in self.tensors if not t.freed]
        if not live:
            return
        tensor = data.draw(st.sampled_from(live))
        tensor.free()

    @rule()
    def respond(self):
        self._drive(self.consumer.respond())

    # ------------------------------------------------------------------
    @invariant()
    def producer_pool_accounts_for_donation(self):
        """offer reservation + parked tensors == donated bytes."""
        parked = sum(
            t.nbytes
            for t in self.tensors
            if not t.freed and t.location is Location.PRODUCER
        )
        offer_held = self.producer.gpu.hbm.held(AQUA_OFFER_TAG)
        assert offer_held + parked == self.producer.donated_bytes

    @invariant()
    def lease_usage_matches_parked_tensors(self):
        lease = self.coord.leases.get(self.producer.name)
        parked = sum(
            t.nbytes
            for t in self.tensors
            if not t.freed and t.location is Location.PRODUCER
        )
        if lease is None:
            assert parked == 0
        else:
            assert lease.used == parked
            assert lease.offered == self.producer.donated_bytes

    @invariant()
    def dram_reservations_match_dram_tensors(self):
        dram_bytes = sum(
            t.nbytes
            for t in self.tensors
            if not t.freed and t.location is Location.DRAM
        )
        assert self.server.dram.pool.used == dram_bytes

    @invariant()
    def registry_matches_live_tensors(self):
        live_ids = {t.id for t in self.tensors if not t.freed}
        assert set(self.consumer.tensors) == live_ids

    @invariant()
    def no_overcommit_on_producer(self):
        assert 0 <= self.producer.gpu.hbm.used <= self.producer.gpu.hbm.capacity


AquaLibMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestAquaLibStateMachine = AquaLibMachine.TestCase
