"""Tests for the concurrent multi-tenant cluster experiment."""

import pytest

from repro.experiments.cluster_run import (
    ClusterExperiment,
    Tenant,
    balanced_tenants,
    llm_heavy_tenants,
)


def test_tenant_validation():
    with pytest.raises(ValueError):
        Tenant("x", "OPT-30B", "mining")


def test_tenant_roles():
    assert Tenant("x", "OPT-30B", "longprompt").is_consumer_workload
    assert not Tenant("x", "StableDiffusion-1.5", "producer").is_consumer_workload


def test_tenant_placement_memory_signs():
    assert Tenant("x", "OPT-30B", "longprompt").placement_memory_bytes() < 0
    assert Tenant("x", "Mistral-7B", "lora").placement_memory_bytes() < 0
    assert Tenant("x", "StableDiffusion-1.5", "producer").placement_memory_bytes() > 0
    assert Tenant("x", "Llama-2-13B", "sharegpt").placement_memory_bytes() > 0


def test_tenant_memory_override():
    t = Tenant("x", "OPT-30B", "longprompt", memory_gib=-20)
    assert t.placement_memory_bytes() == -20 * 1024**3


def test_producer_cannot_run_llm_workload():
    exp = ClusterExperiment(n_servers=1, gpus_per_server=2)
    with pytest.raises(ValueError):
        exp.run([Tenant("x", "StableDiffusion-1.5", "codesummary")], duration=1.0)


def test_paper_splits_have_sixteen_tenants():
    assert len(balanced_tenants()) == 16
    assert len(llm_heavy_tenants()) == 16
    for tenants in (balanced_tenants(), llm_heavy_tenants()):
        names = [t.name for t in tenants]
        assert len(set(names)) == 16


def test_small_cluster_runs_concurrently():
    tenants = [
        Tenant("opt-0", "OPT-30B", "longprompt"),
        Tenant("sd-0", "StableDiffusion-1.5", "producer", rate=1.0),
        Tenant("code-0", "CodeLlama-34B", "codesummary", rate=1.0, count=5),
        Tenant("audio-0", "AudioGen", "producer", rate=1.0),
    ]
    exp = ClusterExperiment(n_servers=2, gpus_per_server=2)
    report = exp.run(tenants, duration=30.0)
    results = report["results"]
    assert set(results) == {"opt-0", "sd-0", "code-0", "audio-0"}
    # Consumers were paired and made progress.
    assert results["opt-0"].tokens > 100
    assert results["code-0"].completed > 0
    # Producers served their clients.
    assert results["sd-0"].completed > 0
    assert results["audio-0"].completed > 0
    # Each consumer landed on a server with its producer.
    placement = report["placement"]
    for consumer, producer in placement.pairs:
        assert placement.server_of[consumer] == placement.server_of[producer]


def test_cluster_aqua_beats_dram_for_consumers():
    tenants = [
        Tenant("opt-0", "OPT-30B", "longprompt"),
        Tenant("sd-0", "StableDiffusion-1.5", "producer", rate=1.0),
    ]

    def tokens(use_aqua):
        exp = ClusterExperiment(n_servers=1, gpus_per_server=2, use_aqua=use_aqua)
        report = exp.run(tenants, duration=30.0)
        return report["results"]["opt-0"].tokens

    assert tokens(True) > 3 * tokens(False)


def test_llm_heavy_cluster_pairs_all_consumers():
    exp = ClusterExperiment(n_servers=8, gpus_per_server=2)
    placement = exp.place(llm_heavy_tenants())
    consumers = [t.name for t in llm_heavy_tenants() if t.is_consumer_workload]
    matched = {c for c, _ in placement.pairs}
    assert set(consumers) <= matched
