"""Tests for the replication-grade evaluation suite (repro.evals)."""

import json
import math

import pytest

from repro import evals
from repro.evals import checks as C
from repro.evals.registry import Claim, EvalRegistry
from repro.evals.runner import evaluate_claim, replicate, run_cell
from repro.evals.schema import SchemaError, validate_replication
from repro.experiments.runall import EXPERIMENTS


# ---------------------------------------------------------------------------
# Registry: the catalog covers the whole figure/table set
# ---------------------------------------------------------------------------
def test_every_runall_experiment_is_covered_by_a_claim():
    covered = set(evals.REGISTRY.experiments())
    assert covered == set(EXPERIMENTS), (
        f"claims must consume every figure/table cell; "
        f"uncovered: {set(EXPERIMENTS) - covered}, "
        f"unknown: {covered - set(EXPERIMENTS)}"
    )


def test_claims_have_unique_ids_and_tolerances_declared_as_data():
    claims = evals.get_claims()
    assert len(claims) >= 20
    assert len({c.id for c in claims}) == len(claims)
    for claim in claims:
        assert claim.claim, f"{claim.id} has no claim text"
        assert claim.expected, f"{claim.id} has no expected statement"
        assert isinstance(claim.tolerance, dict)


def test_select_by_id_prefix_and_experiment_name():
    registry = evals.REGISTRY
    assert {c.id for c in registry.select(["fig02"])} == {
        "fig02-producer-headroom",
        "fig02-llm-exhaustion",
    }
    assert [c.id for c in registry.select(["fig07-speedup"])] == ["fig07-speedup"]
    # fig15 is an *experiment* name consumed by the invariance claim.
    assert [c.id for c in registry.select(["fig15"])] == [
        "fig15-17-producer-invariance"
    ]
    with pytest.raises(KeyError):
        registry.select(["no-such-claim"])


def test_registry_rejects_duplicates_and_cell_less_claims():
    registry = EvalRegistry()
    claim = Claim(
        id="x-a", figure="F", claim="c", experiments=("fig02",), check=lambda r, t: None
    )
    registry.register(claim)
    with pytest.raises(ValueError):
        registry.register(claim)
    with pytest.raises(ValueError):
        registry.register(
            Claim(id="x-b", figure="F", claim="c", experiments=(), check=lambda r, t: None)
        )


# ---------------------------------------------------------------------------
# Checks: tolerance boundaries are inclusive and deterministic
# ---------------------------------------------------------------------------
def test_band_boundaries_are_inclusive():
    # A value landing exactly on either band edge must PASS, always.
    assert C.check_band(1.5, 1.5, None, "x").status == C.PASS
    assert C.check_band(2.6, None, 2.6, "x").status == C.PASS
    assert C.check_band(1.5, 1.5, 1.5, "x").status == C.PASS
    below = C.check_band(math.nextafter(1.5, 0.0), 1.5, None, "x")
    above = C.check_band(math.nextafter(2.6, 3.0), None, 2.6, "x")
    assert below.status == C.FAIL and above.status == C.FAIL
    # Determinism: identical inputs, identical verdict and margin.
    again = C.check_band(1.5, 1.5, None, "x")
    assert (again.status, again.delta) == (C.PASS, 0.0)


def test_metric_rejects_missing_none_and_nan():
    data = {"a": {"b": [1.0, None]}, "nan": float("nan")}
    assert C.metric(data, "a", "b", 0) == 1.0
    for path in (("a", "missing"), ("a", "b", 1), ("nan",), ("a", "b", 7)):
        with pytest.raises(C.MissingMetric):
            C.metric(data, *path)


def test_ratio_guards_zero_denominator():
    with pytest.raises(C.MissingMetric):
        C.ratio(1.0, 0.0)


def test_check_all_fail_dominates_skip_dominates_pass():
    p = C.CheckResult(C.PASS, delta=1.0)
    s = C.CheckResult(C.SKIP, detail="missing")
    f = C.CheckResult(C.FAIL, detail="out of band")
    assert C.check_all([p, s, f]).status == C.FAIL
    assert C.check_all([p, s]).status == C.SKIP
    assert C.check_all([p, p]).status == C.PASS
    assert C.check_all([]).status == C.SKIP


# ---------------------------------------------------------------------------
# Runner edge cases: failed cells and bad metrics score SKIP, never crash
# ---------------------------------------------------------------------------
def _claim(check):
    return Claim(
        id="t-claim",
        figure="Figure T",
        claim="test claim",
        experiments=("cellA",),
        check=check,
        tolerance={"lo": 1.0},
        expected="whatever",
    )


def test_failed_cell_scores_skip_with_error_detail():
    claim = _claim(lambda r, t: C.CheckResult(C.PASS))
    scored = evaluate_claim(claim, {"cellA": {"ok": False, "error": "BOOM: kaput"}})
    assert scored["status"] == "SKIP"
    assert "BOOM: kaput" in scored["detail"]


def test_missing_cell_scores_skip():
    claim = _claim(lambda r, t: C.CheckResult(C.PASS))
    scored = evaluate_claim(claim, {})
    assert scored["status"] == "SKIP"
    assert "not run" in scored["detail"]


def test_nan_metric_scores_skip():
    def check(results, tol):
        return C.check_band(
            C.metric(results, "cellA", "value"), tol["lo"], None, "value"
        )

    scored = evaluate_claim(
        _claim(check), {"cellA": {"ok": True, "value": {"value": float("nan")}}}
    )
    assert scored["status"] == "SKIP"
    assert "NaN" in scored["detail"]


def test_buggy_check_scores_skip_not_crash():
    def check(results, tol):
        raise RuntimeError("check bug")

    scored = evaluate_claim(_claim(check), {"cellA": {"ok": True, "value": {}}})
    assert scored["status"] == "SKIP"
    assert "check bug" in scored["detail"]


def test_run_cell_contains_experiment_errors():
    payload = run_cell("tables")
    assert payload["ok"] and payload["value"]["table1"]
    broken = run_cell("no-such-experiment")
    assert not broken["ok"] and "KeyError" in broken["error"]


# ---------------------------------------------------------------------------
# Schema: REPLICATION.json round-trips and self-validates
# ---------------------------------------------------------------------------
def _fast_doc(tmp_path, **kwargs):
    return replicate(
        only=["fig02", "tables"],
        jobs=1,
        cache_dir=str(tmp_path / "cache") if kwargs.get("cache") else None,
    )


def test_replication_document_round_trips(tmp_path):
    doc = _fast_doc(tmp_path)
    path = evals.write_replication(doc, tmp_path / "REPLICATION.json")
    loaded = evals.load_replication(path)  # validates on load
    assert loaded == json.loads(json.dumps(doc, default=str))
    assert loaded["summary"]["verdict"] in ("PASS", "FAIL")
    assert loaded["summary"]["total"] == len(loaded["claims"]) == 3


def test_validator_rejects_malformed_documents(tmp_path):
    doc = _fast_doc(tmp_path)
    for mutate in (
        lambda d: d.pop("summary"),
        lambda d: d["claims"][0].pop("status"),
        lambda d: d["claims"][0].update(status="MAYBE"),
        lambda d: d["summary"].update({"pass": 99}),
        lambda d: d["summary"].update({"verdict": "FAIL"}),
        lambda d: d.update(schema="other/v9"),
        lambda d: d["claims"].clear(),
        lambda d: d["claims"][0].update(experiments=["ghost-cell"]),
    ):
        broken = json.loads(json.dumps(doc, default=str))
        mutate(broken)
        with pytest.raises(SchemaError):
            validate_replication(broken)


# ---------------------------------------------------------------------------
# End to end: warm cache replays, reports render
# ---------------------------------------------------------------------------
def test_replicate_warm_cache_replays_cells(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = replicate(only=["fig02", "tables"], jobs=1, cache_dir=cache_dir)
    warm = replicate(only=["fig02", "tables"], jobs=1, cache_dir=cache_dir)
    assert all(not cell["cached"] for cell in cold["cells"].values())
    assert all(cell["cached"] for cell in warm["cells"].values())
    assert cold["cache"]["misses"] == len(cold["cells"])
    assert warm["cache"]["hits"] == len(warm["cells"])
    # The verdict is unchanged by the replay.
    strip = lambda d: [  # noqa: E731 - tiny local normaliser
        {k: v for k, v in c.items() if k != "detail"} for c in d["claims"]
    ]
    assert strip(cold) == strip(warm)


def test_fast_claims_pass_on_main(tmp_path):
    doc = _fast_doc(tmp_path)
    statuses = {c["id"]: c["status"] for c in doc["claims"]}
    assert statuses == {
        "fig02-producer-headroom": "PASS",
        "fig02-llm-exhaustion": "PASS",
        "tables-inventory": "PASS",
    }
    assert doc["summary"]["verdict"] == "PASS"


def test_reports_render_every_claim(tmp_path):
    doc = _fast_doc(tmp_path)
    text = evals.render_text(doc)
    md = evals.render_markdown(doc)
    for claim in doc["claims"]:
        assert claim["id"] in text and claim["id"] in md
    assert "verdict" in text.lower() and "Verdict" in md


def test_cli_replicate_list_and_run(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    assert main(["replicate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig07-speedup" in out and "e2e-placement-coverage" in out

    monkeypatch.chdir(tmp_path)
    rc = main(
        ["replicate", "--only", "tables-inventory", "--jobs", "1", "--no-cache",
         "--report", "verdict.md"]
    )
    assert rc == 0
    assert (tmp_path / "REPLICATION.json").exists()
    assert (tmp_path / "verdict.md").exists()
    loaded = evals.load_replication(tmp_path / "REPLICATION.json")
    assert loaded["summary"]["verdict"] == "PASS"
