"""Tests for transfer statistics, channel accounting and routes."""

import pytest

from repro.hardware import Server
from repro.hardware.dma import Transfer, TransferStats
from repro.hardware.specs import MB
from repro.sim import Environment


def run_transfer(server, src, dst, nbytes, pieces=1):
    env = server.env

    def move(env):
        yield from server.transfer(src, dst, nbytes, pieces=pieces)

    proc = env.process(move(env))
    env.run(until=proc)


def test_stats_accumulate_per_route():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus
    run_transfer(server, g0, g1, 10 * MB)
    run_transfer(server, g0, g1, 20 * MB)
    run_transfer(server, g0, server.dram, 5 * MB)
    stats = server.transfer_stats
    assert stats.count == 3
    assert stats.bytes_total == 35 * MB
    assert stats.busy_time > 0
    route_key = f"{g0.name}->{g1.name}"
    assert stats.per_route[route_key] == 30 * MB
    dram_key = f"{g0.name}->{server.dram.name}"
    assert stats.per_route[dram_key] == 5 * MB


def test_channel_counters():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus
    run_transfer(server, g0, g1, 16 * MB)
    channel = server.interconnect.channels[f"{server.name}:nvlink:gpu0->gpu1"]
    assert channel.transfer_count == 1
    assert channel.bytes_moved == 16 * MB
    # The reverse channel is untouched.
    reverse = server.interconnect.channels[f"{server.name}:nvlink:gpu1->gpu0"]
    assert reverse.transfer_count == 0


def test_nvswitch_route_full_payload_per_hop():
    """Regression: every hop of a multi-hop route carries the whole
    payload, so each channel's ledger must record the full transfer.
    (The old code split ``nbytes / len(route)`` across hops, silently
    under-counting per-channel ``bytes_moved`` on NVSwitch/RDMA routes.)
    """
    env = Environment()
    server = Server(env, n_gpus=4, topology="nvswitch")
    g0, g1 = server.gpus[:2]
    run_transfer(server, g0, g1, 10 * MB)
    egress = server.interconnect.channels[f"{server.name}:nvswitch-egress:gpu0"]
    ingress = server.interconnect.channels[f"{server.name}:nvswitch-ingress:gpu1"]
    assert egress.bytes_moved == 10 * MB
    assert ingress.bytes_moved == 10 * MB
    assert egress.transfer_count == 1
    assert ingress.transfer_count == 1
    # The aggregate stats still count the payload once, not once per hop.
    assert server.transfer_stats.bytes_total == 10 * MB


def test_multi_hop_counters_accumulate_across_transfers():
    env = Environment()
    server = Server(env, n_gpus=4, topology="nvswitch")
    g0, g1, g2 = server.gpus[:3]
    run_transfer(server, g0, g1, 10 * MB)
    run_transfer(server, g0, g2, 5 * MB)
    egress = server.interconnect.channels[f"{server.name}:nvswitch-egress:gpu0"]
    # gpu0's egress port carried both payloads in full.
    assert egress.bytes_moved == 15 * MB
    assert egress.transfer_count == 2


def test_route_latency_and_bottleneck():
    env = Environment()
    server = Server(env, n_gpus=2, topology="nvswitch")
    g0, g1 = server.gpus
    route = server.interconnect.route(g0, g1)
    assert len(route.channels) == 2
    assert route.latency == 2 * server.gpu_link.latency
    assert route.bottleneck_bandwidth == server.gpu_link.peak_bandwidth
    assert route.transfer_time(0) == 0.0
    with pytest.raises(ValueError):
        route.transfer_time(-1)
    assert route.effective_bandwidth(0) == 0.0


def test_transfer_duration_property():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus
    t = Transfer(env, server.interconnect, g0, g1, 8 * MB)
    assert t.duration is None

    def move(env):
        yield from t.run()

    env.process(move(env))
    env.run()
    assert t.duration == pytest.approx(
        server.gpu_link.transfer_time(8 * MB)
    )


def test_transfer_validation():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus
    with pytest.raises(ValueError):
        Transfer(env, server.interconnect, g0, g1, -1)
    with pytest.raises(ValueError):
        Transfer(env, server.interconnect, g0, g1, 10, pieces=0)


def test_stats_record_manual():
    stats = TransferStats()
    stats.record("a->b", 100.0, 0.5)
    stats.record("a->b", 50.0, 0.2)
    assert stats.count == 2
    assert stats.per_route["a->b"] == 150.0
    assert stats.busy_time == pytest.approx(0.7)


def test_gpu_dilation_restored_after_transfer():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus
    run_transfer(server, g0, g1, 64 * MB)
    assert g0.active_copies == 0
    assert g1.active_copies == 0
    assert g0.dilation() == 1.0
