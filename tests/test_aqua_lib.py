"""Integration tests for AquaLib + AquaTensor on a simulated server."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator, EngineStats, LlmInformer
from repro.aqua.lib import AQUA_OFFER_TAG
from repro.aqua.tensor import Location
from repro.faults import RetryPolicy
from repro.hardware import Server
from repro.hardware.specs import GiB, MB
from repro.sim import Environment


def make_rig(offer_bytes=10 * GiB, gather=True, pair=True):
    """A 2-GPU server: gpu0 consumer, gpu1 producer with a live lease."""
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    coord = Coordinator()
    consumer = AquaLib(server.gpus[0], server, coord, gather_enabled=gather)
    producer = AquaLib(server.gpus[1], server, coord)
    if pair:
        coord.pair(consumer.name, producer.name)
    if offer_bytes:
        producer.complete_offer(offer_bytes)
    return env, server, coord, consumer, producer


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


# ---------------------------------------------------------------------------
# Allocation and placement accounting
# ---------------------------------------------------------------------------
def test_offer_reserves_producer_hbm():
    env, server, coord, consumer, producer = make_rig(offer_bytes=10 * GiB)
    assert producer.gpu.hbm.held(AQUA_OFFER_TAG) == 10 * GiB
    assert coord.leases[producer.name].offered == 10 * GiB


def test_tensor_lands_on_producer():
    env, server, coord, consumer, producer = make_rig()
    t = consumer.to_responsive_tensor(1 * GiB)
    assert t.on_fast_path
    assert t.device is producer.gpu
    # Pool accounting shifted from the offer to the tensor, total unchanged.
    assert producer.gpu.hbm.held(AQUA_OFFER_TAG) == 9 * GiB
    assert producer.gpu.hbm.held(t.tag) == 1 * GiB
    assert producer.gpu.hbm.used == 10 * GiB


def test_tensor_falls_back_to_dram():
    env, server, coord, consumer, producer = make_rig(offer_bytes=0, pair=True)
    t = consumer.to_responsive_tensor(1 * GiB)
    assert not t.on_fast_path
    assert t.device is server.dram
    assert server.dram.pool.held(t.tag) == 1 * GiB


def test_tensor_free_restores_offer():
    env, server, coord, consumer, producer = make_rig()
    t = consumer.to_responsive_tensor(1 * GiB)
    t.free()
    assert producer.gpu.hbm.held(AQUA_OFFER_TAG) == 10 * GiB
    assert t.freed
    t.free()  # idempotent
    assert coord.leases[producer.name].used == 0


def test_tensor_validation():
    env, server, coord, consumer, producer = make_rig()
    with pytest.raises(ValueError):
        consumer.to_responsive_tensor(0)
    with pytest.raises(ValueError):
        consumer.to_responsive_tensor(10, pieces=0)


# ---------------------------------------------------------------------------
# Fetch / flush timing: the NVLink fast path
# ---------------------------------------------------------------------------
def test_fetch_from_producer_faster_than_dram():
    nbytes = 512 * MB
    env1, server1, _, consumer1, _ = make_rig()
    t_fast = consumer1.to_responsive_tensor(nbytes)
    run(env1, t_fast.fetch())
    fast = env1.now

    env2, server2, _, consumer2, _ = make_rig(offer_bytes=0)
    t_slow = consumer2.to_responsive_tensor(nbytes)
    run(env2, t_slow.fetch())
    slow = env2.now

    assert slow / fast > 5
    assert t_fast.fetch_count == 1


def test_gather_beats_naive_scatter():
    """AQUA's gather kernel coalesces scattered KV pieces (§5)."""
    nbytes, pieces = 64 * MB, 1024
    env1, _, _, consumer1, _ = make_rig(gather=True)
    t1 = consumer1.to_responsive_tensor(nbytes, pieces=pieces)
    run(env1, t1.fetch())

    env2, _, _, consumer2, _ = make_rig(gather=False)
    t2 = consumer2.to_responsive_tensor(nbytes, pieces=pieces)
    run(env2, t2.fetch())

    assert env2.now / env1.now > 5


def test_flush_roundtrip():
    env, server, coord, consumer, producer = make_rig()
    t = consumer.to_responsive_tensor(128 * MB)
    run(env, t.flush())
    assert t.flush_count == 1
    assert env.now > 0


def test_fetch_after_free_rejected():
    env, server, coord, consumer, producer = make_rig()
    t = consumer.to_responsive_tensor(1 * MB)
    t.free()
    with pytest.raises(RuntimeError):
        run(env, t.fetch())
    with pytest.raises(RuntimeError):
        run(env, t.flush())


# ---------------------------------------------------------------------------
# respond(): reclaim migrations and upgrades
# ---------------------------------------------------------------------------
def test_reclaim_migrates_tensors_to_dram():
    env, server, coord, consumer, producer = make_rig()
    t = consumer.to_responsive_tensor(2 * GiB)
    # Producer wants its memory back.
    informer = LlmInformer(queue_high=4)
    producer.informer = informer
    stats = EngineStats(now=0.0, pending_requests=100, offerable_bytes=0)
    delta = producer.inform_stats(stats)
    assert delta == 0  # reclaim pending, tensors not yet evacuated
    assert producer.reclaim_pending

    run(env, consumer.respond())
    assert t.location is Location.DRAM
    assert server.dram.pool.held(t.tag) == 2 * GiB

    # Next poll completes the reclaim and returns the donation.
    delta = producer.inform_stats(stats)
    assert delta == 10 * GiB
    assert producer.gpu.hbm.used == 0
    assert producer.donated_bytes == 0


def test_respond_upgrades_dram_tensor_when_lease_appears():
    env, server, coord, consumer, producer = make_rig(offer_bytes=0)
    t = consumer.to_responsive_tensor(1 * GiB)
    assert t.location is Location.DRAM
    producer.complete_offer(4 * GiB)
    run(env, consumer.respond())
    assert t.on_fast_path
    assert t.device is producer.gpu
    assert server.dram.pool.used == 0


def test_respond_without_migrations_is_instant():
    env, server, coord, consumer, producer = make_rig()
    consumer.to_responsive_tensor(1 * GiB)
    run(env, consumer.respond())
    assert env.now == 0.0


def test_respond_skips_freed_tensors():
    env, server, coord, consumer, producer = make_rig(offer_bytes=0)
    t = consumer.to_responsive_tensor(1 * GiB)
    producer.complete_offer(4 * GiB)
    t.free()
    run(env, consumer.respond())
    assert t.freed


def test_respond_blocked_time_accumulates():
    env, server, coord, consumer, producer = make_rig()
    t = consumer.to_responsive_tensor(2 * GiB)
    producer.informer = LlmInformer()
    producer.inform_stats(EngineStats(now=0.0, pending_requests=100))
    run(env, consumer.respond())
    assert consumer.respond_blocked_time > 0


# ---------------------------------------------------------------------------
# inform_stats() contract
# ---------------------------------------------------------------------------
def test_inform_stats_requests_offer_when_idle():
    env, server, coord, consumer, producer = make_rig(offer_bytes=0)
    producer.informer = LlmInformer(retain_bytes=5 * GiB)
    stats = EngineStats(
        now=0.0,
        pending_requests=0,
        kv_used_bytes=1 * GiB,
        kv_capacity_bytes=40 * GiB,
        offerable_bytes=39 * GiB,
    )
    delta = producer.inform_stats(stats)
    assert delta == -(34 * GiB)  # offer everything above the 5 GiB retention


def test_inform_stats_hold_when_no_informer():
    env, server, coord, consumer, producer = make_rig(offer_bytes=0)
    assert producer.inform_stats(EngineStats(now=0.0)) == 0


def test_complete_offer_validation():
    env, server, coord, consumer, producer = make_rig(offer_bytes=0)
    with pytest.raises(ValueError):
        producer.complete_offer(0)


def test_batch_informer_offer_flow():
    env, server, coord, consumer, producer = make_rig(offer_bytes=0)
    producer.informer = BatchInformer(margin_bytes=2 * GiB)
    stats = EngineStats(now=0.0, offerable_bytes=50 * GiB)
    delta = producer.inform_stats(stats)
    assert delta == -(48 * GiB)
    producer.complete_offer(-delta)
    assert coord.leases[producer.name].offered == 48 * GiB


# ---------------------------------------------------------------------------
# Migration rollback: stalled evacuation must not corrupt the books
# ---------------------------------------------------------------------------
def stall_route(server, src, dst):
    for channel in server.interconnect.route(src, dst).channels:
        channel.stall()


def unstall_route(server, src, dst):
    for channel in server.interconnect.route(src, dst).channels:
        channel.unstall()


def test_migration_rollback_on_exhausted_retries():
    """Regression: a reclaim evacuation whose transfer stalls through
    every retry used to leave all three ledgers (tensor, pools,
    coordinator) pointing at DRAM while the bytes never left the
    producer.  The library must roll the accounting back, report the
    failure, and leave the migration queued for a later boundary.
    """
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    coord = Coordinator()
    consumer = AquaLib(
        server.gpus[0],
        server,
        coord,
        retry_policy=RetryPolicy(initial_delay=0.01, max_delay=0.02, max_attempts=2),
    )
    producer = AquaLib(server.gpus[1], server, coord)
    coord.pair(consumer.name, producer.name)
    producer.complete_offer(10 * GiB)

    t = consumer.to_responsive_tensor(1 * GiB)
    assert t.on_fast_path

    # Producer wants its memory back -> migration to DRAM queued.
    producer.informer = LlmInformer(queue_high=4)
    stats = EngineStats(now=0.0, pending_requests=100, offerable_bytes=0)
    producer.inform_stats(stats)
    assert producer.reclaim_pending

    # The evacuation path is dead for longer than the retries last.
    stall_route(server, producer.gpu, server.dram)
    run(env, consumer.respond())

    # Books rolled back: the tensor is still (physically and on paper)
    # on the producer, nothing is charged to DRAM.
    assert t.location is Location.PRODUCER
    assert t.device is producer.gpu
    assert producer.gpu.hbm.held(t.tag) == 1 * GiB
    assert server.dram.pool.held(t.tag) == 0
    assert coord.allocations[t.id].location == producer.name
    lease = coord.leases[producer.name]
    assert lease.used == 1 * GiB
    assert producer.gpu.hbm.held(AQUA_OFFER_TAG) == lease.offered - lease.used
    assert consumer.retries == 1  # one backoff retry before giving up
    assert t.lost is False

    # The reclaim is still waiting on this tensor and the migration is
    # re-queued for the next boundary.
    assert not coord.request(
        "GET", "/reclaim_status", {"producer": producer.name}
    ).body["done"]
    assert consumer.get_tensors_to_move() == {t.id: "dram"}

    # Once the route heals, the next respond() completes the evacuation.
    unstall_route(server, producer.gpu, server.dram)
    run(env, consumer.respond())
    assert t.location is Location.DRAM
    assert server.dram.pool.held(t.tag) == 1 * GiB
    assert producer.gpu.hbm.held(t.tag) == 0
    assert producer.inform_stats(stats) == 10 * GiB  # reclaim completes


def test_full_lib_cycle_against_strict_json_coordinator():
    """The library's control traffic must survive a socket-faithful
    (strict_json) coordinator end to end, including migration maps
    whose ids come back as strings."""
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    coord = Coordinator(strict_json=True)
    consumer = AquaLib(server.gpus[0], server, coord)
    producer = AquaLib(server.gpus[1], server, coord)
    coord.pair(consumer.name, producer.name)
    producer.complete_offer(4 * GiB)

    t = consumer.to_responsive_tensor(1 * GiB)
    assert t.on_fast_path
    assert consumer.get_tensors_to_move() == {}

    producer.informer = LlmInformer(queue_high=4)
    producer.inform_stats(EngineStats(now=0.0, pending_requests=100))
    assert consumer.get_tensors_to_move() == {t.id: "dram"}
    run(env, consumer.respond())
    assert t.location is Location.DRAM
    t.free()
    assert producer.inform_stats(
        EngineStats(now=0.0, pending_requests=100)
    ) == 4 * GiB


def test_move_failed_unknown_tensor_404():
    coord = Coordinator()
    resp = coord.request("POST", "/move_failed", {"tensor_id": 42, "location": "dram"})
    assert resp.status == 404


def test_offloaded_byte_counters():
    env, server, coord, consumer, producer = make_rig(offer_bytes=3 * GiB)
    consumer.to_responsive_tensor(2 * GiB)  # fast path
    consumer.to_responsive_tensor(2 * GiB)  # does not fit -> DRAM
    assert consumer.offloaded_fast_bytes == 2 * GiB
    assert consumer.offloaded_dram_bytes == 2 * GiB
