"""Tests for the Orca-style worst-case-reservation baseline."""

import pytest

from repro.hardware import Server
from repro.models import CODELLAMA_34B, MISTRAL_7B
from repro.serving import OrcaEngine, Request, VLLMEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def make_orca(model=MISTRAL_7B):
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = OrcaEngine(server.gpus[0], server, model)
    engine.start()
    return env, server, engine


def test_orca_serves_requests():
    env, server, engine = make_orca()
    req = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=50)
    engine.submit(req)
    env.run(until=60)
    assert req.done
    assert engine.allocator.used_blocks == 0


def test_orca_reserves_worst_case():
    env, server, engine = make_orca()
    req = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=900)
    engine.submit(req)
    env.run(until=0.1)
    # Blocks for the full 1000 tokens were taken at admission.
    expected = engine.kv.blocks_for(1000)
    assert engine.allocator.used_blocks == expected
    assert engine.reserved_unused_bytes > 0


def test_orca_never_preempts():
    env, server, engine = make_orca(model=CODELLAMA_34B)
    requests = [
        Request(arrival_time=0.0, prompt_tokens=2000, max_new_tokens=4000)
        for _ in range(10)
    ]
    submit_all(env, engine, requests)
    env.run(until=2500)
    assert engine.preemptions == 0
    assert all(r.done for r in requests)


def test_orca_admits_fewer_concurrent_than_vllm():
    """Worst-case reservation throttles concurrency: the memory story
    behind paged attention (and why AQUA builds on vLLM)."""

    def peak_concurrency(cls):
        env = Environment()
        server = Server(env, n_gpus=1)
        engine = cls(server.gpus[0], server, CODELLAMA_34B)
        engine.start()
        requests = [
            Request(arrival_time=0.0, prompt_tokens=500, max_new_tokens=3000)
            for _ in range(40)
        ]
        submit_all(env, engine, requests)
        peak = [0]

        def watch(env):
            while True:
                peak[0] = max(peak[0], len(engine.running))
                yield env.timeout(0.25)

        env.process(watch(env))
        env.run(until=120)
        return peak[0]

    orca = peak_concurrency(OrcaEngine)
    vllm = peak_concurrency(VLLMEngine)
    assert vllm > 1.5 * orca


def test_orca_worse_ttft_under_burst():
    def ttft_p95(cls):
        from repro.serving.metrics import percentile

        env = Environment()
        server = Server(env, n_gpus=1)
        engine = cls(server.gpus[0], server, CODELLAMA_34B)
        engine.start()
        requests = [
            Request(arrival_time=0.2 * i, prompt_tokens=700, max_new_tokens=2000)
            for i in range(30)
        ]
        submit_all(env, engine, requests)
        env.run(until=900)
        ttfts = [r.ttft for r in requests if r.ttft is not None]
        return percentile(ttfts, 95)

    assert ttft_p95(OrcaEngine) > ttft_p95(VLLMEngine)
