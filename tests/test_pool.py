"""Tests for the parallel experiment pool and the content-addressed cache.

The worker tasks live at module level in ``repro.experiments`` modules
(``_sweep_cell``, ``_runall_cell``...); here we use a tiny arithmetic
task of our own so cache semantics are observable without running
simulations.  The determinism of *real* experiment subsets under
parallel execution is locked down in ``tests/test_determinism_golden.py``.
"""

import os
import pickle

import pytest

from repro.experiments.pool import (
    DEFAULT_CACHE_DIR,
    RunCache,
    RunSpec,
    canonical_kwargs,
    code_fingerprint,
    derive_seed,
    resolve_task,
    run_specs,
)

TASK = "tests.test_pool:poolable_task"


def poolable_task(x: int, y: int = 1, seed=None) -> dict:
    """Module-level so specs naming it survive pickling into workers."""
    return {"product": x * y, "seed": seed}


# ---------------------------------------------------------------------------
# RunSpec / primitives
# ---------------------------------------------------------------------------
def test_runspec_rejects_non_task_path():
    with pytest.raises(ValueError, match="module:callable"):
        RunSpec(task="not_a_path")


def test_runspec_rejects_non_json_kwargs():
    with pytest.raises(TypeError):
        RunSpec(task=TASK, kwargs={"fn": poolable_task})


def test_runspec_default_label_strips_private_prefix():
    assert RunSpec(task="m:_cell").label == "cell"
    assert RunSpec(task="m:cell", label="fancy").label == "fancy"


def test_canonical_kwargs_is_order_independent():
    assert canonical_kwargs({"a": 1, "b": 2}) == canonical_kwargs({"b": 2, "a": 1})


def test_resolve_task_roundtrip_and_errors():
    assert resolve_task(TASK) is poolable_task
    with pytest.raises(AttributeError):
        resolve_task("tests.test_pool:no_such_callable")


def test_derive_seed_stable_and_distinct():
    assert derive_seed("family", 0) == derive_seed("family", 0)
    assert derive_seed("family", 0) != derive_seed("family", 1)
    assert 0 <= derive_seed("family", 0) < 2**32


def test_code_fingerprint_stable_within_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_default_cache_dir_is_gitignored():
    repo_root = os.path.join(os.path.dirname(__file__), os.pardir)
    with open(os.path.join(repo_root, ".gitignore")) as fh:
        assert f"{DEFAULT_CACHE_DIR}/" in fh.read().split()


# ---------------------------------------------------------------------------
# run_specs execution
# ---------------------------------------------------------------------------
def test_run_specs_serial_matches_parallel():
    specs = [
        RunSpec(task=TASK, kwargs={"x": i, "y": 3}, seed=derive_seed("t", i))
        for i in range(4)
    ]
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    assert [r.value for r in serial] == [r.value for r in parallel]
    assert [r.value["product"] for r in serial] == [0, 3, 6, 9]
    assert all(not r.cached for r in serial + parallel)


def test_run_specs_results_in_submission_order():
    specs = [RunSpec(task=TASK, kwargs={"x": i}) for i in range(5)]
    results = run_specs(specs, jobs=3)
    assert [r.spec.kwargs["x"] for r in results] == [0, 1, 2, 3, 4]


def test_run_specs_seed_is_forwarded():
    (result,) = run_specs([RunSpec(task=TASK, kwargs={"x": 1}, seed=99)], jobs=1)
    assert result.value["seed"] == 99


def test_run_specs_propagates_worker_exception():
    specs = [RunSpec(task=TASK, kwargs={"x": 1, "y": None})] * 2
    with pytest.raises(TypeError):
        run_specs(specs, jobs=2)


def test_run_specs_progress_lines(capsys):
    lines = []
    run_specs(
        [RunSpec(task=TASK, kwargs={"x": 2}, label="cell-a")],
        jobs=1,
        progress=lines.append,
    )
    assert lines == ["running cell-a..."]


def test_run_specs_spawn_start_method(monkeypatch):
    """Workers must survive ``spawn`` — the strictest start method."""
    monkeypatch.setenv("AQUA_POOL_START_METHOD", "spawn")
    specs = [RunSpec(task=TASK, kwargs={"x": i, "y": 2}) for i in range(2)]
    assert [r.value["product"] for r in run_specs(specs, jobs=2)] == [0, 2]


# ---------------------------------------------------------------------------
# RunCache
# ---------------------------------------------------------------------------
def _spec(x=5, seed=11):
    return RunSpec(task=TASK, kwargs={"x": x}, seed=seed)


def test_cache_miss_then_hit(tmp_path):
    cache = RunCache(tmp_path, fingerprint="f1")
    spec = _spec()
    assert cache.load(spec) is None
    results = run_specs([spec], jobs=1, cache=cache)
    assert not results[0].cached
    again = run_specs([spec], jobs=1, cache=cache)
    assert again[0].cached and again[0].value == results[0].value
    assert cache.stats.hits == 1 and cache.stats.misses == 2


def test_cache_key_sensitivity(tmp_path):
    """Changing task, kwargs, seed or fingerprint changes the address."""
    cache = RunCache(tmp_path, fingerprint="f1")
    base = cache.key(_spec())
    assert cache.key(_spec(x=6)) != base
    assert cache.key(_spec(seed=12)) != base
    assert cache.key(RunSpec(task="m:other", kwargs={"x": 5}, seed=11)) != base
    assert RunCache(tmp_path, fingerprint="f2").key(_spec()) != base
    assert cache.key(_spec()) == base  # and it is stable


def test_cache_fingerprint_change_invalidates(tmp_path):
    spec = _spec()
    old = RunCache(tmp_path, fingerprint="code-v1")
    run_specs([spec], jobs=1, cache=old)
    assert old.load(spec) is not None
    new = RunCache(tmp_path, fingerprint="code-v2")
    assert new.load(spec) is None  # same dir, new code: entry unreachable


def test_cache_none_bypasses_disk(tmp_path):
    """``--no-cache``: nothing is read or written."""
    spec = _spec()
    run_specs([spec], jobs=1, cache=None)
    assert list(tmp_path.iterdir()) == []


def test_cache_tolerates_corrupted_entry(tmp_path):
    cache = RunCache(tmp_path, fingerprint="f1")
    spec = _spec()
    run_specs([spec], jobs=1, cache=cache)
    path = cache.path(spec)
    path.write_bytes(b"not a pickle at all")
    assert cache.load(spec) is None  # miss, not a crash
    rerun = run_specs([spec], jobs=1, cache=cache)  # and it self-heals
    assert not rerun[0].cached
    assert cache.load(spec) is not None


def test_cache_rejects_wrong_schema_and_mismatched_key(tmp_path):
    cache = RunCache(tmp_path, fingerprint="f1")
    spec, other = _spec(), _spec(x=6)
    run_specs([spec], jobs=1, cache=cache)
    payload = pickle.loads(cache.path(spec).read_bytes())
    payload["schema"] = "aqua-repro-cache/v999"
    cache.path(spec).write_bytes(pickle.dumps(payload))
    assert cache.load(spec) is None
    # An entry copied to the wrong address must not be served.
    run_specs([spec], jobs=1, cache=cache)
    cache.path(other).write_bytes(cache.path(spec).read_bytes())
    assert cache.load(other) is None


def test_cache_hit_skips_execution_under_parallel_jobs(tmp_path):
    cache = RunCache(tmp_path, fingerprint="f1")
    specs = [RunSpec(task=TASK, kwargs={"x": i}) for i in range(3)]
    run_specs(specs, jobs=2, cache=cache)
    lines = []
    warm = run_specs(specs, jobs=2, cache=cache, progress=lines.append)
    assert all(r.cached for r in warm)
    assert all(line.startswith("cached ") for line in lines)
    assert cache.stats.hits == 3
