"""Unit tests for the SLO subsystem: objectives, burn rates, alerts.

Exercises the declarative pieces (:class:`SLObjective`,
:class:`BurnRateWindow`, :class:`SLOPolicy` and its dict round-trip —
the form policies take across pooled-worker process boundaries) and the
:class:`SLOTracker` behaviours the resilience experiment depends on:
multi-window burn-rate math, rising-edge alert firing, and the goodput
demand gating that keeps idle gaps and prefill from counting as
violations.
"""

import pytest

from repro.sim import Environment
from repro.telemetry import Telemetry
from repro.telemetry.slo import (
    DEFAULT_BURN_WINDOWS,
    BurnRateWindow,
    SLObjective,
    SLOPolicy,
    SLOTracker,
    default_slo_policy,
)


# ---------------------------------------------------------------------------
# Declarative pieces
# ---------------------------------------------------------------------------
def test_objective_validation():
    with pytest.raises(ValueError, match="unknown SLO metric"):
        SLObjective("x", "t", "throughput", 1.0)
    with pytest.raises(ValueError, match="target"):
        SLObjective("x", "t", "ttft", 1.0, target=1.0)
    with pytest.raises(ValueError, match="threshold"):
        SLObjective("x", "t", "ttft", 0.0)


def test_burn_window_validation():
    with pytest.raises(ValueError, match="windows"):
        BurnRateWindow(long_s=5.0, short_s=5.0, factor=2.0)
    with pytest.raises(ValueError, match="factor"):
        BurnRateWindow(long_s=10.0, short_s=1.0, factor=0.5)


def test_policy_rejects_duplicate_objective_names():
    o = SLObjective("dup", "t", "ttft", 1.0)
    with pytest.raises(ValueError, match="duplicate"):
        SLOPolicy(objectives=[o, o])


def test_policy_dict_round_trip():
    policy = default_slo_policy(goodput_floor=2.5)
    rebuilt = SLOPolicy.from_dict(policy.to_dict())
    assert rebuilt.name == policy.name
    assert list(rebuilt.objectives) == list(policy.objectives)
    assert list(rebuilt.windows) == list(policy.windows)


def test_default_policy_shape():
    policy = default_slo_policy(consumer="flexgen", producer="producer")
    assert [o.name for o in policy.objectives] == [
        "flexgen-goodput",
        "producer-ttft",
        "producer-tpot",
    ]
    assert tuple(policy.windows) == DEFAULT_BURN_WINDOWS


# ---------------------------------------------------------------------------
# Tracker: latency outcomes and burn-rate alerts
# ---------------------------------------------------------------------------
class _FakeRequest:
    """Just enough of a Request for latency judging."""

    def __init__(self, ttft=None, rct=None, generated_tokens=0):
        self.ttft = ttft
        self.rct = rct
        self.generated_tokens = generated_tokens


def _tracker(objective, windows=None, env=None):
    policy = SLOPolicy(
        objectives=[objective],
        windows=windows or [BurnRateWindow(long_s=10.0, short_s=2.0, factor=2.0)],
    )
    env = env or Environment()
    return env, SLOTracker(env, policy)


def test_latency_outcomes_respect_tenant_substring():
    env, tracker = _tracker(SLObjective("ttft", "producer", "ttft", 1.0, target=0.9))
    tracker.observe_request("producer-LLAMA2-13B", _FakeRequest(ttft=0.5))
    tracker.observe_request("producer-LLAMA2-13B", _FakeRequest(ttft=3.0))
    tracker.observe_request("flexgen-OPT-30B", _FakeRequest(ttft=9.0))  # other tenant
    state = tracker._states["ttft"]
    assert (state.good_total, state.bad_total) == (1, 1)


def test_tpot_derived_from_first_and_last_token():
    env, tracker = _tracker(SLObjective("tpot", "eng", "tpot", 0.5, target=0.9))
    # 10 tokens over 4.5s of decode -> 0.5s/token exactly: on-threshold is good.
    tracker.observe_request("eng", _FakeRequest(ttft=1.0, rct=5.5, generated_tokens=10))
    # Single-token requests have no decode pace and are not judged.
    tracker.observe_request("eng", _FakeRequest(ttft=1.0, rct=1.0, generated_tokens=1))
    state = tracker._states["tpot"]
    assert (state.good_total, state.bad_total) == (1, 0)


def test_burn_rate_math_and_empty_window():
    env, tracker = _tracker(SLObjective("e2e", "eng", "e2e", 1.0, target=0.9))
    state = tracker._states["e2e"]
    budget = 0.1
    assert tracker._burn(state, now=0.0, window_s=10.0, budget=budget) is None
    # 2 bad out of 4 -> error rate 0.5 -> burn 5x budget.
    for t, good in [(1.0, True), (2.0, False), (3.0, True), (4.0, False)]:
        state.outcomes.append((t, good))
    assert tracker._burn(state, now=4.0, window_s=10.0, budget=budget) == 5.0
    # Short trailing window only sees the last (bad) outcome: total burn.
    assert tracker._burn(state, now=4.0, window_s=0.5, budget=budget) == 10.0


def test_alert_fires_on_rising_edge_only():
    env, tracker = _tracker(
        SLObjective("e2e", "eng", "e2e", 1.0, target=0.9),
        windows=[BurnRateWindow(long_s=10.0, short_s=2.0, factor=2.0, severity="page")],
    )
    fired = []
    tracker.on_alert.append(fired.append)

    def run_to(t):
        env.run(until=t)

    # Saturate both windows with bad outcomes, then tick.
    run_to(5.0)
    for _ in range(4):
        tracker.observe_request("eng", _FakeRequest(rct=9.0))
    tracker.on_scrape(env.now)
    assert len(tracker.alerts) == 1
    alert = tracker.alerts[0]
    assert alert["severity"] == "page" and alert["slo"] == "e2e"
    assert alert["burn_long"] == pytest.approx(10.0)
    assert alert["burn_short"] == pytest.approx(10.0)
    assert fired == tracker.alerts

    # Still firing on the next tick: no duplicate alert (edge-triggered).
    run_to(6.0)
    tracker.observe_request("eng", _FakeRequest(rct=9.0))
    tracker.on_scrape(env.now)
    assert len(tracker.alerts) == 1

    # Recover (only good outcomes in the short window), then relapse:
    # the alert may fire again.
    run_to(9.0)
    for _ in range(20):
        tracker.observe_request("eng", _FakeRequest(rct=0.1))
    tracker.on_scrape(env.now)
    run_to(12.0)
    for _ in range(30):
        tracker.observe_request("eng", _FakeRequest(rct=9.0))
    tracker.on_scrape(env.now)
    assert len(tracker.alerts) == 2


def test_no_data_is_not_an_outage():
    """An idle tenant (no outcomes at all) must never alert."""
    env, tracker = _tracker(SLObjective("ttft", "eng", "ttft", 1.0, target=0.9))
    for t in (1.0, 2.0, 3.0):
        env.run(until=t)
        tracker.on_scrape(t)
    assert tracker.alerts == []
    # Attainment series records the optimistic 1.0 placeholder.
    state = tracker._states["ttft"]
    assert set(state.attainment.values) == {1.0}


# ---------------------------------------------------------------------------
# Goodput demand gating (needs a real hub for the engine counters)
# ---------------------------------------------------------------------------
class _Req:
    """Minimal request the hub's counters accept."""

    def __init__(self):
        self.ttft = None
        self.rct = None
        self.generated_tokens = 0
        self.done = False


def _goodput_rig(threshold=1.0):
    env = Environment()
    tm = Telemetry(env)
    policy = SLOPolicy(
        objectives=[SLObjective("gp", "eng", "goodput", threshold, target=0.9)],
        windows=[BurnRateWindow(long_s=10.0, short_s=2.0, factor=2.0)],
    )
    tracker = SLOTracker(env, policy, telemetry=tm)
    return env, tm, tracker


def test_goodput_not_judged_without_demand():
    """Idle gaps (no requests in flight) produce no outcomes at all."""
    env, tm, tracker = _goodput_rig()
    for t in (0.0, 1.0, 2.0):
        env.run(until=t)
        tracker.on_scrape(t)
    state = tracker._states["gp"]
    assert (state.good_total, state.bad_total) == (0, 0)


def test_goodput_not_judged_during_prefill():
    """In-flight but pre-first-token (prefill) is TTFT's problem, not
    goodput's: no tokens have ever streamed, so no outcome is recorded."""
    env, tm, tracker = _goodput_rig()
    tm.requests_submitted.labels(engine="eng-A").inc()
    tracker.on_scrape(0.0)
    env.run(until=1.0)
    tracker.on_scrape(1.0)
    state = tracker._states["gp"]
    assert (state.good_total, state.bad_total) == (0, 0)


def test_goodput_judges_stalled_and_healthy_decode():
    env, tm, tracker = _goodput_rig(threshold=2.0)
    tm.requests_submitted.labels(engine="eng-A").inc()
    tokens = tm.tokens_generated.labels(engine="eng-A")
    tracker.on_scrape(0.0)

    # Healthy interval: 3 tok/s >= 2.0 floor.
    env.run(until=1.0)
    tokens.inc(3.0)
    tracker.on_scrape(1.0)
    # Stalled decode: demand, tokens streamed before, none now -> bad.
    env.run(until=2.0)
    tracker.on_scrape(2.0)
    state = tracker._states["gp"]
    assert (state.good_total, state.bad_total) == (1, 1)

    # Request completes; the now-idle tenant is no longer judged.
    tm.requests_completed.labels(engine="eng-A").inc()
    env.run(until=3.0)
    tracker.on_scrape(3.0)
    assert (state.good_total, state.bad_total) == (1, 1)


def test_report_is_plain_data():
    env, tm, tracker = _goodput_rig()
    tracker.on_scrape(0.0)
    report = tracker.report()
    assert report["policy"]["name"] == tracker.policy.name
    assert report["alerts"] == []
    gp = report["objectives"]["gp"]
    assert gp["attainment_overall"] is None
    assert gp["attainment_series"]["times"] == [0.0]
    # Round-trippable through JSON (what pooled workers require).
    import json

    json.dumps(report)
