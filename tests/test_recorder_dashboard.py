"""Unit tests for the flight recorder and the self-contained dashboard.

The recorder half covers ring bounds, the fault/alert triggers, the
capture cooldown, and on-disk post-mortem bundles.  The dashboard half
renders a real telemetered run (the ``observe`` rig with faults and a
scraper attached) and asserts the acceptance properties: one HTML file,
the expected sections, and **zero** external references — no URLs, no
script tags, nothing the CI self-containment check would flag.
"""

import json
import os

import pytest

from repro.experiments.observe import observe_experiment
from repro.sim import Environment
from repro.telemetry import FlightRecorder, Telemetry
from repro.telemetry.dashboard import render_dashboard, write_dashboard


# ---------------------------------------------------------------------------
# FlightRecorder
# ---------------------------------------------------------------------------
def test_ring_is_bounded_and_counts_drops():
    rec = FlightRecorder(Environment(), capacity=3)
    for i in range(5):
        rec.record("note", i=i)
    assert len(rec.ring) == 3
    assert rec.dropped == 2
    assert [e["i"] for e in rec.ring] == [2, 3, 4]
    assert all(e["t"] == 0.0 and e["kind"] == "note" for e in rec.ring)


def test_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        FlightRecorder(Environment(), capacity=0)


def test_fault_apply_triggers_bundle_clear_does_not():
    env = Environment()
    rec = FlightRecorder(env)
    rec.on_fault("dma-stall", "apply", targets=["nvlink-0"])
    assert len(rec.bundles) == 1
    bundle = rec.bundles[0]
    assert bundle["reason"] == "fault:dma-stall"
    assert bundle["context"]["targets"] == ["nvlink-0"]
    env.run(until=30.0)
    rec.on_fault("dma-stall", "clear", targets=["nvlink-0"])
    assert len(rec.bundles) == 1  # clearing is history, not an incident
    kinds = [e["kind"] for e in rec.ring]
    assert kinds == ["fault", "postmortem", "fault"]


def test_alert_hook_triggers_bundle():
    rec = FlightRecorder(Environment())
    rec.on_alert(
        {
            "slo": "flexgen-goodput",
            "severity": "ticket",
            "burn_long": 2.5,
            "burn_short": 4.0,
        }
    )
    assert rec.bundles[0]["reason"] == "slo:flexgen-goodput"
    entry = rec.ring[0]
    assert entry["kind"] == "slo-alert" and entry["severity"] == "ticket"


def test_min_gap_cooldown_suppresses_and_records():
    env = Environment()
    rec = FlightRecorder(env, min_gap=5.0)
    assert rec.trigger("first") is not None
    assert rec.trigger("storm") is None  # within the cooldown
    assert rec.suppressed == 1
    assert any(
        e["kind"] == "postmortem-suppressed" and e["reason"] == "storm"
        for e in rec.ring
    )
    env.run(until=6.0)
    assert rec.trigger("second") is not None
    assert [b["seq"] for b in rec.bundles] == [0, 1]


def test_bundles_dump_to_disk(tmp_path):
    env = Environment()
    rec = FlightRecorder(env, dump_dir=str(tmp_path), min_gap=0.0)
    rec.record("note", detail="before")
    rec.trigger("fault:test", extra=1)
    path = rec.bundles[0]["path"]
    assert os.path.basename(path) == "postmortem-000.json"
    with open(path) as fh:
        on_disk = json.load(fh)
    assert on_disk["schema"] == "aqua-postmortem/v1"
    assert on_disk["reason"] == "fault:test"
    assert on_disk["context"] == {"extra": 1}
    assert on_disk["ring"][0]["detail"] == "before"


def test_scrape_deltas_skip_quiet_ticks():
    env = Environment()
    tm = Telemetry(env)
    rec = FlightRecorder(env, telemetry=tm)
    counter = tm.tokens_generated.labels(engine="eng")
    counter.inc(0.0)
    rec.on_scrape(0.0)  # baseline
    rec.on_scrape(1.0)  # quiet: nothing moved
    counter.inc(5.0)
    rec.on_scrape(2.0)
    metric_entries = [e for e in rec.ring if e["kind"] == "metrics"]
    assert len(metric_entries) == 1
    (key, delta), = metric_entries[0]["deltas"].items()
    assert "tokens_generated" in key and delta == 5.0


def test_to_dict_is_json_safe():
    rec = FlightRecorder(Environment())
    rec.record("note")
    rec.trigger("x")
    out = rec.to_dict()
    json.dumps(out)
    assert out["capacity"] == rec.ring.maxlen
    assert len(out["bundles"]) == 1


# ---------------------------------------------------------------------------
# Dashboard (rendered from a real short telemetered run)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def observe_result():
    return observe_experiment(duration=20.0, scrape_interval=0.5)


def test_observe_result_carries_observability(observe_result):
    obs = observe_result["observability"]
    assert obs["scrape"]["scrapes"] >= 39  # 20s at 0.5s intervals
    assert obs["scrape"]["series"]  # non-empty store
    assert "slo" in obs and "recorder" in obs
    # The injected DMA stall at t=12 must have left a post-mortem.
    reasons = [b["reason"] for b in obs["recorder"]["bundles"]]
    assert any(r.startswith("fault:") for r in reasons)


def test_dashboard_renders_expected_sections(observe_result):
    html = render_dashboard(observe_result["dashboard_data"])
    assert html.lstrip().startswith("<!DOCTYPE html>")
    for expected in (
        "Token throughput",
        "SLO attainment",
        "Latency attribution",
        "Post-mortems",
        "<svg",
        "prefers-color-scheme: dark",
        "<details>",  # accessible data tables behind the charts
    ):
        assert expected in html, f"dashboard missing {expected!r}"


def test_dashboard_is_self_contained(observe_result):
    """The CI gate in words: one file, no network, no scripts."""
    html = render_dashboard(observe_result["dashboard_data"])
    lowered = html.lower()
    assert "http" not in lowered
    assert "<script" not in lowered
    assert "@import" not in lowered
    assert 'src="' not in lowered


def test_write_dashboard_round_trip(tmp_path, observe_result):
    out = tmp_path / "dash.html"
    path = write_dashboard(str(out), observe_result["dashboard_data"])
    assert path == str(out)
    assert out.read_text() == render_dashboard(observe_result["dashboard_data"])


def test_dashboard_data_is_json_safe(observe_result):
    json.dumps(observe_result["dashboard_data"])
