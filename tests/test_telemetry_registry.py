"""Tests for the Prometheus-style metrics registry."""

import math

import pytest

from repro.telemetry import Counter, Gauge, Histogram, Registry, parse_prometheus_text


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------
def test_counter_monotone():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(5)
    g.inc(2)
    g.dec(3)
    assert g.value == 4.0


def test_gauge_callback_reads_live():
    state = {"n": 1}
    g = Gauge()
    g.set_function(lambda: state["n"])
    assert g.value == 1.0
    state["n"] = 7
    assert g.value == 7.0
    g.set(0)  # explicit set detaches the callback
    state["n"] = 99
    assert g.value == 0.0


def test_histogram_cumulative_buckets():
    h = Histogram(buckets=(1.0, 5.0, 10.0))
    for v in (0.5, 0.7, 3.0, 20.0):
        h.observe(v)
    assert h.bucket_counts() == [(1.0, 2), (5.0, 3), (10.0, 3), (float("inf"), 4)]
    assert h.count == 4
    assert h.sum == pytest.approx(24.2)


def test_histogram_bucket_boundary_is_inclusive():
    # Prometheus le semantics: an observation equal to an upper bound
    # lands in that bucket.
    h = Histogram(buckets=(1.0, 2.0))
    h.observe(1.0)
    assert h.bucket_counts()[0] == (1.0, 1)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=(3.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(buckets=(float("inf"),))


# ---------------------------------------------------------------------------
# Families and labels
# ---------------------------------------------------------------------------
def test_family_label_validation():
    r = Registry()
    fam = r.counter("requests_total", "Requests.", ["engine"])
    fam.labels(engine="vllm").inc()
    with pytest.raises(ValueError):
        fam.labels(gpu="0")  # wrong label name
    with pytest.raises(ValueError):
        fam.inc()  # labeled family has no unlabeled default


def test_family_children_are_cached():
    r = Registry()
    fam = r.counter("x_total", "", ["k"])
    assert fam.labels(k="a") is fam.labels(k="a")
    fam.labels(k="a").inc()
    fam.labels(k="a").inc()
    assert fam.labels(k="a").value == 2.0


def test_register_or_return_and_conflicts():
    r = Registry()
    first = r.counter("n_total", "", ["a"])
    assert r.counter("n_total", "", ["a"]) is first
    with pytest.raises(ValueError):
        r.gauge("n_total", "", ["a"])  # kind conflict
    with pytest.raises(ValueError):
        r.counter("n_total", "", ["b"])  # label-schema conflict


def test_invalid_names_rejected():
    r = Registry()
    with pytest.raises(ValueError):
        r.counter("2bad", "")
    with pytest.raises(ValueError):
        r.counter("ok_total", "", ["bad-label"])


# ---------------------------------------------------------------------------
# Exposition
# ---------------------------------------------------------------------------
def test_prometheus_text_roundtrip():
    r = Registry()
    r.counter("tokens_total", "Tokens.", ["engine"]).labels(engine="vllm").inc(3)
    r.gauge("depth", "Queue depth.").set(2)
    h = r.histogram("latency_seconds", "Latency.", ["engine"], buckets=(0.1, 1.0))
    h.labels(engine="vllm").observe(0.05)
    h.labels(engine="vllm").observe(5.0)

    text = r.to_prometheus_text()
    assert "# HELP tokens_total Tokens." in text
    assert "# TYPE latency_seconds histogram" in text
    assert 'tokens_total{engine="vllm"} 3.0' in text

    samples = parse_prometheus_text(text)
    assert samples["tokens_total"] == [({"engine": "vllm"}, 3.0)]
    assert samples["depth"] == [({}, 2.0)]
    buckets = dict(
        (labels["le"], value) for labels, value in samples["latency_seconds_bucket"]
    )
    assert buckets == {"0.1": 1.0, "1.0": 1.0, "+Inf": 2.0}
    assert samples["latency_seconds_count"] == [({"engine": "vllm"}, 2.0)]


def test_label_value_escaping_roundtrip():
    r = Registry()
    tricky = 'a"b\\c\nd'
    r.counter("esc_total", "", ["path"]).labels(path=tricky).inc()
    samples = parse_prometheus_text(r.to_prometheus_text())
    (labels, value) = samples["esc_total"][0]
    assert labels == {"path": tricky}
    assert value == 1.0


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus_text("not a metric line at all !!!")
    with pytest.raises(ValueError):
        parse_prometheus_text("name{unclosed 1.0")


def test_to_dict_export():
    r = Registry()
    r.counter("c_total", "help!", ["k"]).labels(k="v").inc(2)
    d = r.to_dict()
    assert d["c_total"]["type"] == "counter"
    assert d["c_total"]["help"] == "help!"
    assert d["c_total"]["samples"] == [
        {"name": "c_total", "labels": {"k": "v"}, "value": 2.0}
    ]


def test_nan_and_inf_formatting():
    r = Registry()
    g = r.gauge("weird", "")
    g.set(float("nan"))
    samples = parse_prometheus_text(r.to_prometheus_text())
    assert math.isnan(samples["weird"][0][1])
    g.set(float("inf"))
    samples = parse_prometheus_text(r.to_prometheus_text())
    assert samples["weird"][0][1] == float("inf")


def test_help_text_escaping():
    """HELP lines escape backslash and newline (and nothing else — in
    the exposition format quotes stay literal in HELP text)."""
    r = Registry()
    r.counter("weird_total", 'multi\nline "quoted" back\\slash help')
    text = r.to_prometheus_text()
    assert (
        '# HELP weird_total multi\\nline "quoted" back\\\\slash help' in text
    )
    # Escaping keeps the comment on one physical line.
    help_lines = [l for l in text.splitlines() if l.startswith("# HELP weird_total")]
    assert len(help_lines) == 1
    parse_prometheus_text(text)  # and the document still parses


def test_help_and_type_lines_precede_samples():
    r = Registry()
    r.gauge("depth", "Queue depth.").set(1)
    lines = r.to_prometheus_text().splitlines()
    i_help = lines.index("# HELP depth Queue depth.")
    i_type = lines.index("# TYPE depth gauge")
    i_sample = lines.index("depth 1.0")
    assert i_help < i_type < i_sample


def test_label_unescape_is_single_pass():
    """Regression: a literal backslash followed by a literal ``n`` must
    not collapse into a newline on parse.  Sequential str.replace
    unescaping (``\\n`` first, then ``\\\\``) corrupts exactly this
    value; the parser must unescape in one pass."""
    r = Registry()
    tricky = "\\n"  # two characters: backslash, n — NOT a newline
    r.counter("esc2_total", "", ["path"]).labels(path=tricky).inc()
    text = r.to_prometheus_text()
    assert 'path="\\\\n"' in text  # escaped backslash, literal n
    (labels, _) = parse_prometheus_text(text)["esc2_total"][0]
    assert labels == {"path": tricky}
    assert "\n" not in labels["path"]
