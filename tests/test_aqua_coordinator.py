"""Tests for the REST router and the AQUA central coordinator."""

import threading

import pytest

from repro.aqua import Coordinator, Response, RestRouter
from repro.aqua.coordinator import DRAM


# ---------------------------------------------------------------------------
# RestRouter
# ---------------------------------------------------------------------------
def test_router_dispatch():
    router = RestRouter()

    @router.route("GET", "/ping")
    def ping(payload):
        return Response.json({"pong": payload.get("x", 0)})

    resp = router.request("GET", "/ping", {"x": 7})
    assert resp.ok
    assert resp.body == {"pong": 7}


def test_router_unknown_route_404():
    router = RestRouter()
    resp = router.request("GET", "/nope")
    assert resp.status == 404


def test_router_duplicate_route_rejected():
    router = RestRouter()

    @router.route("GET", "/a")
    def a(payload):
        return Response.json()

    with pytest.raises(ValueError):

        @router.route("GET", "/a")
        def b(payload):
            return Response.json()


def test_router_handler_exception_becomes_500():
    router = RestRouter()

    @router.route("POST", "/boom")
    def boom(payload):
        raise RuntimeError("kaput")

    resp = router.request("POST", "/boom")
    assert resp.status == 500
    assert "kaput" in resp.body["error"]


def test_router_method_case_insensitive():
    router = RestRouter()

    @router.route("get", "/x")
    def x(payload):
        return Response.json({"ok": True})

    assert router.request("GET", "/x").ok


def test_router_strict_json_round_trips_payload():
    """strict_json behaves like a real socket: int keys become strings."""
    router = RestRouter(strict_json=True)
    seen = {}

    @router.route("POST", "/echo")
    def echo(payload):
        seen.update(payload)
        return Response.json({"keys": list(payload["m"].keys())})

    resp = router.request("POST", "/echo", {"m": {1: "a", 2: "b"}})
    assert resp.ok
    assert resp.body["keys"] == ["1", "2"]
    assert list(seen["m"].keys()) == ["1", "2"]


def test_router_strict_json_rejects_unserializable_payload():
    router = RestRouter(strict_json=True)

    @router.route("POST", "/x")
    def x(payload):
        return Response.json()

    resp = router.request("POST", "/x", {"bad": {1, 2, 3}})
    assert resp.status == 400
    assert "JSON-safe" in resp.body["error"]


def test_router_strict_json_rejects_unserializable_body():
    router = RestRouter(strict_json=True)

    @router.route("GET", "/y")
    def y(payload):
        return Response.json({"bad": object()})

    resp = router.request("GET", "/y")
    assert resp.status == 500
    assert "JSON-safe" in resp.body["error"]


def test_router_lenient_by_default():
    router = RestRouter()

    @router.route("POST", "/z")
    def z(payload):
        return Response.json({"same": payload["m"]})

    resp = router.request("POST", "/z", {"m": {1: "a"}})
    assert resp.body["same"] == {1: "a"}


# ---------------------------------------------------------------------------
# Coordinator: leases and allocation
# ---------------------------------------------------------------------------
def make_paired_coordinator(offer=10_000):
    coord = Coordinator()
    coord.request("POST", "/pair", {"consumer": "c0", "producer": "p0"})
    if offer:
        coord.request("POST", "/lease", {"producer": "p0", "nbytes": offer})
    return coord


def test_lease_accumulates():
    coord = Coordinator()
    coord.request("POST", "/lease", {"producer": "p0", "nbytes": 100})
    resp = coord.request("POST", "/lease", {"producer": "p0", "nbytes": 50})
    assert resp.body["offered"] == 150


def test_lease_invalid_size():
    coord = Coordinator()
    resp = coord.request("POST", "/lease", {"producer": "p0", "nbytes": 0})
    assert not resp.ok


def test_allocate_prefers_paired_producer():
    coord = make_paired_coordinator()
    resp = coord.request(
        "POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 4_000}
    )
    assert resp.body["location"] == "p0"
    assert coord.leases["p0"].used == 4_000


def test_allocate_falls_back_to_dram_when_lease_full():
    coord = make_paired_coordinator(offer=1_000)
    resp = coord.request(
        "POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 4_000}
    )
    assert resp.body["location"] == DRAM


def test_allocate_without_pairing_goes_to_dram():
    coord = Coordinator()
    resp = coord.request(
        "POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 10}
    )
    assert resp.body["location"] == DRAM


def test_allocate_duplicate_tensor_rejected():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 10})
    resp = coord.request(
        "POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 10}
    )
    assert resp.status == 409


def test_free_returns_lease_capacity():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 4000})
    coord.request("POST", "/free", {"tensor_id": 1})
    assert coord.leases["p0"].used == 0


def test_free_unknown_tensor_404():
    coord = Coordinator()
    resp = coord.request("POST", "/free", {"tensor_id": 99})
    assert resp.status == 404


# ---------------------------------------------------------------------------
# Coordinator: reclaim protocol
# ---------------------------------------------------------------------------
def test_reclaim_empty_lease_completes_immediately():
    coord = make_paired_coordinator()
    resp = coord.request("POST", "/reclaim_request", {"producer": "p0"})
    assert resp.body["done"]
    assert "p0" not in coord.leases


def test_reclaim_without_lease_404():
    coord = Coordinator()
    resp = coord.request("POST", "/reclaim_request", {"producer": "p0"})
    assert resp.status == 404


def test_reclaim_queues_migrations_for_consumer():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 100})
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 2, "nbytes": 100})
    resp = coord.request("POST", "/reclaim_request", {"producer": "p0"})
    assert resp.body == {"pending": 2, "done": False}
    moves = coord.request("GET", "/respond", {"consumer": "c0"}).body["migrations"]
    # Migration maps are keyed by *string* tensor ids (JSON-safe).
    assert moves == {"1": DRAM, "2": DRAM}


def test_reclaim_blocks_new_allocations():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 100})
    coord.request("POST", "/reclaim_request", {"producer": "p0"})
    resp = coord.request(
        "POST", "/allocate", {"consumer": "c0", "tensor_id": 2, "nbytes": 100}
    )
    assert resp.body["location"] == DRAM


def test_reclaim_completes_after_moves():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 100})
    coord.request("POST", "/reclaim_request", {"producer": "p0"})
    status = coord.request("GET", "/reclaim_status", {"producer": "p0"}).body
    assert not status["done"]
    coord.request("POST", "/moved", {"tensor_id": 1, "location": DRAM})
    status = coord.request("GET", "/reclaim_status", {"producer": "p0"}).body
    assert status["done"]
    assert "p0" not in coord.leases


def test_reclaim_completes_via_free():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 100})
    coord.request("POST", "/reclaim_request", {"producer": "p0"})
    coord.request("POST", "/free", {"tensor_id": 1})
    assert coord.request("GET", "/reclaim_status", {"producer": "p0"}).body["done"]


def test_lease_during_reclaim_rejected():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 100})
    coord.request("POST", "/reclaim_request", {"producer": "p0"})
    resp = coord.request("POST", "/lease", {"producer": "p0", "nbytes": 100})
    assert resp.status == 409


# ---------------------------------------------------------------------------
# Coordinator: respond upgrades
# ---------------------------------------------------------------------------
def test_respond_proposes_dram_upgrades():
    coord = make_paired_coordinator(offer=500)
    # Does not fit in lease -> DRAM.
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 800})
    # Lease grows.
    coord.request("POST", "/lease", {"producer": "p0", "nbytes": 1_000})
    moves = coord.request("GET", "/respond", {"consumer": "c0"}).body["migrations"]
    assert moves == {"1": "p0"}


def test_respond_upgrade_respects_budget():
    coord = make_paired_coordinator(offer=100)
    # Both tensors are too big for the 100-byte lease -> DRAM.
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 800})
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 2, "nbytes": 800})
    # The lease grows to 1100 bytes: room for one tensor, not both.
    coord.request("POST", "/lease", {"producer": "p0", "nbytes": 1_000})
    moves = coord.request("GET", "/respond", {"consumer": "c0"}).body["migrations"]
    assert len(moves) == 1


def test_moved_updates_location_and_lease():
    coord = make_paired_coordinator(offer=1_000)
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 800})
    assert coord.allocations[1].location == "p0"
    coord.request("POST", "/moved", {"tensor_id": 1, "location": DRAM})
    assert coord.allocations[1].location == DRAM
    assert coord.leases["p0"].used == 0


def test_moved_to_full_lease_409():
    coord = make_paired_coordinator(offer=100)
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 800})
    resp = coord.request("POST", "/moved", {"tensor_id": 1, "location": "p0"})
    assert resp.status == 409
    assert coord.allocations[1].location == DRAM


def test_moved_same_location_noop():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 100})
    resp = coord.request("POST", "/moved", {"tensor_id": 1, "location": "p0"})
    assert resp.ok
    assert coord.leases["p0"].used == 100


def test_stats_endpoint():
    coord = make_paired_coordinator()
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 100})
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 2, "nbytes": 20_000})
    stats = coord.request("GET", "/stats").body
    assert stats["offloaded_bytes"] == 100
    assert stats["dram_bytes"] == 20_000
    assert stats["allocations"] == 2


def test_offers_endpoint():
    coord = make_paired_coordinator(offer=5_000)
    body = coord.request("GET", "/offers").body
    assert body["leases"]["p0"]["offered"] == 5_000


def test_coordinator_strict_json_full_reclaim_cycle():
    """Regression: the migration map used to be ``{int: str}``, which a
    real HTTP hop silently rewrites to string keys.  The whole control
    protocol must survive a strict (socket-faithful) coordinator.
    """
    coord = Coordinator(strict_json=True)
    coord.request("POST", "/pair", {"consumer": "c0", "producer": "p0"})
    coord.request("POST", "/lease", {"producer": "p0", "nbytes": 10_000})
    coord.request("POST", "/allocate", {"consumer": "c0", "tensor_id": 1, "nbytes": 400})
    resp = coord.request("POST", "/reclaim_request", {"producer": "p0"})
    assert resp.ok and not resp.body["done"]
    moves = coord.request("GET", "/respond", {"consumer": "c0"}).body["migrations"]
    assert moves == {"1": DRAM}
    # The client echoes the string id back; handlers coerce with int().
    for tensor_id, location in moves.items():
        resp = coord.request(
            "POST", "/moved", {"tensor_id": tensor_id, "location": location}
        )
        assert resp.ok
    assert coord.request("GET", "/reclaim_status", {"producer": "p0"}).body["done"]
    assert coord.allocations[1].location == DRAM


def test_coordinator_thread_safety():
    """Concurrent allocate/free churn never corrupts lease accounting."""
    coord = make_paired_coordinator(offer=1_000_000)
    errors = []

    def churn(base):
        try:
            for i in range(200):
                tid = base + i
                coord.request(
                    "POST",
                    "/allocate",
                    {"consumer": "c0", "tensor_id": tid, "nbytes": 10},
                )
                coord.request("POST", "/free", {"tensor_id": tid})
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(i * 1000,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert coord.leases["p0"].used == 0
    assert not coord.allocations
