"""Smoke tests: every example script runs end-to-end and prints its
headline output.  Keeps `examples/` from rotting as the library evolves."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "speedup" in out
    assert "NVLink" in out


@pytest.mark.slow
def test_cluster_placement(capsys):
    out = run_example("cluster_placement.py", capsys)
    assert "unmatched consumers: none" in out
    assert "server0" in out


@pytest.mark.slow
def test_lora_serving(capsys):
    out = run_example("lora_serving.py", capsys)
    assert "AQUA improves mean RCT" in out


@pytest.mark.slow
def test_elastic_sharing(capsys):
    out = run_example("elastic_sharing.py", capsys)
    assert "consumer tokens total" in out
    assert "burst" in out


@pytest.mark.slow
def test_responsive_chatbot(capsys):
    out = run_example("responsive_chatbot.py", capsys)
    assert "vLLM (batching)" in out
    assert "AQUA (CFS over NVLink)" in out


@pytest.mark.slow
def test_multi_tenant_cluster(capsys):
    out = run_example("multi_tenant_cluster.py", capsys)
    assert "consumer/producer pairs" in out


@pytest.mark.slow
def test_weighted_tenants(capsys):
    out = run_example("weighted_tenants.py", capsys)
    assert "premium/standard service ratio" in out


@pytest.mark.slow
def test_calibrate_and_run(capsys):
    out = run_example("calibrate_and_run.py", capsys)
    assert "fitted my-nvlink" in out
    assert "speedup" in out


@pytest.mark.slow
def test_trace_inspection(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # the example writes aqua_trace.json
    out = run_example("trace_inspection.py", capsys)
    assert "Chrome trace written" in out
    assert (tmp_path / "aqua_trace.json").exists()


@pytest.mark.slow
def test_fault_tolerant_serving(capsys):
    out = run_example("fault_tolerant_serving.py", capsys)
    assert "dma-stall" in out
    assert "gpu-failure" in out
    assert "requests dropped" in out
    assert "Every fault is survived" in out


@pytest.mark.slow
def test_slo_monitoring(capsys):
    out = run_example("slo_monitoring.py", capsys)
    assert "flexgen-goodput" in out
    assert "ticket" in out  # the sustained-burn alert fires
    assert "postmortem-000.json" in out
    assert "control run alerts: 0" in out
