"""The bench harness produces valid artifacts and catches regressions."""

import copy
import json

import pytest

from repro import benchmarks
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def quick_kernel_doc():
    """One real --quick kernel run, shared across the module's tests."""
    return benchmarks.run_bench(["kernel"], quick=True)


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------
def test_quick_run_is_schema_valid(quick_kernel_doc):
    benchmarks.validate_bench(quick_kernel_doc)  # must not raise
    kernel = quick_kernel_doc["scenarios"]["kernel"]
    assert kernel["events_per_s"] > 0
    assert kernel["events"] == benchmarks.kernel_event_count(100, 60)
    assert quick_kernel_doc["peak_rss_bytes"] > 0
    assert quick_kernel_doc["baseline"]["kernel_events_per_s"] == 531_646


def test_kernel_doc_records_coarsened_companion_metrics(quick_kernel_doc):
    """BENCH artifacts carry raw events AND modelled token-steps (PR 7):
    coarsening deflates events/s by design, so the artifact records both
    bases and the gate only ever compares the raw one."""
    from repro.benchmarks.scenarios import KERNEL_COARSEN

    kernel = quick_kernel_doc["scenarios"]["kernel"]
    assert kernel["scheduler"] == "heap"
    assert kernel["coarsen"] == KERNEL_COARSEN > 1
    assert kernel["token_steps"] == 100 * 60  # quick: 100 procs x 60 hops
    assert kernel["token_steps_per_s"] > 0
    # The coarse companion modelled the same horizon in far fewer events.
    assert kernel["coarse_events"] < kernel["events"]
    assert kernel["coarse_wall_s_best"] > 0
    assert quick_kernel_doc["scheduler"] == "heap"


def test_unknown_scenario_rejected():
    with pytest.raises(KeyError, match="no-such-scenario"):
        benchmarks.run_bench(["no-such-scenario"], quick=True)


@pytest.mark.parametrize(
    "mutation, message",
    [
        (lambda d: d.update(schema="bogus/v0"), "schema"),
        (lambda d: d.update(bench_index="four"), "bench_index"),
        (lambda d: d.update(baseline={}), "kernel_events_per_s"),
        (lambda d: d.update(scenarios={}), "non-empty"),
        (
            lambda d: d["scenarios"].update(kernel={"events_per_s": -1}),
            "positive",
        ),
        (lambda d: d.update(peak_rss_bytes=0), "peak_rss_bytes"),
    ],
)
def test_validate_rejects_malformed_documents(quick_kernel_doc, mutation, message):
    doc = copy.deepcopy(quick_kernel_doc)
    mutation(doc)
    with pytest.raises(ValueError, match=message):
        benchmarks.validate_bench(doc)


# ---------------------------------------------------------------------------
# Regression comparator
# ---------------------------------------------------------------------------
def _doc_with_kernel(events_per_s: float) -> dict:
    return {
        "schema": benchmarks.SCHEMA,
        "bench_index": benchmarks.BENCH_INDEX,
        "quick": True,
        "baseline": dict(benchmarks.RECORDED_BASELINE),
        "scenarios": {"kernel": {"events_per_s": events_per_s}},
        "peak_rss_bytes": 1,
    }


def test_comparator_flags_20_percent_regression():
    current, baseline = _doc_with_kernel(80_000.0), _doc_with_kernel(100_000.0)
    regressions, lines = benchmarks.compare_bench(current, baseline, tolerance=0.10)
    assert len(regressions) == 1 and "kernel" in regressions[0]
    assert any("REGRESSION" in line for line in lines)


def test_comparator_tolerates_small_slowdown_and_speedups():
    baseline = _doc_with_kernel(100_000.0)
    for ok_value in (95_000.0, 100_000.0, 250_000.0):
        regressions, _ = benchmarks.compare_bench(
            _doc_with_kernel(ok_value), baseline, tolerance=0.10
        )
        assert regressions == []


def test_comparator_skips_mismatched_scheduler_without_gating():
    """Raw events/s across schedule backends is an A/B comparison, not a
    regression signal: the gate must report and skip, never fail."""
    current, baseline = _doc_with_kernel(50_000.0), _doc_with_kernel(100_000.0)
    current["scenarios"]["kernel"]["scheduler"] = "calendar"
    regressions, lines = benchmarks.compare_bench(current, baseline, tolerance=0.10)
    assert regressions == []
    assert any("not like-for-like" in line for line in lines)


def test_comparator_skips_mismatched_transfer_fastpath_without_gating():
    """Same rule for the transfer fast path (PR 10): the toggle changes
    event economics, so cross-toggle numbers are an A/B, never a gate.
    An absent field means the historical Resource path (False)."""
    current, baseline = _doc_with_kernel(50_000.0), _doc_with_kernel(100_000.0)
    current["scenarios"]["kernel"]["transfer_fastpath"] = True
    # baseline has no transfer_fastpath key at all -> False.
    regressions, lines = benchmarks.compare_bench(current, baseline, tolerance=0.10)
    assert regressions == []
    assert any("not like-for-like" in line for line in lines)
    # Matching toggles gate normally.
    baseline["scenarios"]["kernel"]["transfer_fastpath"] = True
    regressions, _ = benchmarks.compare_bench(current, baseline, tolerance=0.10)
    assert len(regressions) == 1


def test_comparator_treats_missing_scheduler_field_as_heap():
    """Pre-PR-7 artifacts carry no scheduler field; they gate normally
    against a heap-backend run."""
    current, baseline = _doc_with_kernel(80_000.0), _doc_with_kernel(100_000.0)
    current["scenarios"]["kernel"]["scheduler"] = "heap"
    # baseline has no scheduler key at all.
    regressions, _ = benchmarks.compare_bench(current, baseline, tolerance=0.10)
    assert len(regressions) == 1


def test_comparator_reports_scenario_mismatches_without_gating():
    current, baseline = _doc_with_kernel(100_000.0), _doc_with_kernel(100_000.0)
    baseline["scenarios"]["cluster"] = {"sim_s_per_wall_s": 10.0}
    current["scenarios"]["vllm_e2e"] = {"sim_s_per_wall_s": 10.0}
    regressions, lines = benchmarks.compare_bench(current, baseline)
    assert regressions == []
    assert any("cluster" in line for line in lines)
    assert any("vllm_e2e" in line for line in lines)


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------
def test_cli_bench_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "BENCH_test.json"
    rc = cli_main(["bench", "kernel", "--quick", "--out", str(out)])
    assert rc == 0
    doc = benchmarks.load_bench(str(out))  # validates on load
    assert "kernel" in doc["scenarios"]
    assert "events/s" in capsys.readouterr().out


def test_cli_bench_baseline_gate_exits_nonzero(tmp_path, quick_kernel_doc):
    # A baseline claiming a kernel far faster than physically measured
    # forces the regression path deterministically.
    inflated = copy.deepcopy(quick_kernel_doc)
    inflated["scenarios"]["kernel"]["events_per_s"] *= 100
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(inflated))
    rc = cli_main(
        [
            "bench",
            "kernel",
            "--quick",
            "--out",
            str(tmp_path / "out.json"),
            "--baseline",
            str(baseline_path),
        ]
    )
    assert rc == 1


def test_cli_bench_scheduler_flag_round_trips(tmp_path):
    out = tmp_path / "BENCH_cal.json"
    rc = cli_main(
        ["bench", "kernel", "--quick", "--scheduler", "calendar", "--out", str(out)]
    )
    assert rc == 0
    doc = benchmarks.load_bench(str(out))
    assert doc["scheduler"] == "calendar"
    assert doc["scenarios"]["kernel"]["scheduler"] == "calendar"
    assert doc["scenarios"]["kernel"]["events_per_s"] > 0


def test_cli_bench_transfer_fastpath_flag_round_trips(tmp_path):
    out = tmp_path / "BENCH_fast.json"
    rc = cli_main(
        ["bench", "transfer", "--quick", "--transfer-fastpath", "--out", str(out)]
    )
    assert rc == 0
    doc = benchmarks.load_bench(str(out))
    assert doc["transfer_fastpath"] is True
    metrics = doc["scenarios"]["transfer"]
    assert metrics["transfer_fastpath"] is True
    # The A/B scenario ran both modes, proved them identical, and the
    # fast path retired the same transfers in fewer events.
    assert metrics["identical"] is True
    assert metrics["transfers_per_s"] > 0
    assert metrics["events_on"] < metrics["events_off"]
    assert metrics["event_reduction"] > 1.0
    # With the toggle on, the primary metric is the fast-path rate.
    assert metrics["transfers_per_s"] == metrics["transfers_per_s_on"]


def test_cli_bench_list(capsys):
    assert cli_main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for name in benchmarks.SCENARIOS:
        assert name in out
