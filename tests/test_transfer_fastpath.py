"""The analytic channel-timeline transfer fast path is semantics-identical.

The fast path (PR 10) replaces the ``Resource``/``AllOf``/release
machinery of the DMA hot loop with closed-form completion events over
per-channel ``busy_until`` cursors.  These tests pin the equivalence
claim from every angle:

* Hypothesis properties: random route/size/arrival interleavings on
  both server topologies produce identical grant order, completion
  times, contention attribution and per-hop channel ledgers under the
  fast path and the Resource path.
* Mixed-mode FIFO: generator-path transfers queue behind analytic
  in-flight ones (and vice versa) in exact arrival order.
* Fault fallback: a pending fault schedule, a degraded or stalled
  channel, or a queued Resource request forces the exact path.
* Live degradation (the satellite): a transfer starting after a
  ``degradation`` change pays the new bandwidth, one already on the
  wire does not — on both paths.
* Mid-acquisition teardown (the satellite): a Transfer interrupted
  while waiting in ``AllOf`` releases granted *and* queued channel
  claims without corrupting FIFO order for the waiters behind it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import DmaStall, FaultInjector, FaultSchedule, GpuFailure, LinkDegradation
from repro.hardware import Server
from repro.hardware.dma import Transfer, TransferStalled
from repro.hardware.dma import copy as dma_copy
from repro.sim import Environment, Interrupt, SleepUntil

MiB = float(2**20)


# ---------------------------------------------------------------------------
# Harness: run one transfer schedule under either path, return observables
# ---------------------------------------------------------------------------
def _run_schedule(ops, topology, fastpath, n_gpus=4):
    """Run ``ops`` — ``(start, src, dst, nbytes, pieces)`` tuples where
    src/dst index GPUs and ``n_gpus`` means host DRAM — and return every
    observable the equivalence claim covers."""
    env = Environment()
    server = Server(env, n_gpus=n_gpus, topology=topology, transfer_fastpath=fastpath)
    devices = [*server.gpus, server.dram]
    done = []

    def driver(i, start, src, dst, nbytes, pieces):
        yield env.timeout(start)
        t = yield from server.transfer(devices[src], devices[dst], nbytes, pieces=pieces)
        done.append((i, t.started_at, t.acquired_at, t.finished_at))

    for i, (start, src, dst, nbytes, pieces) in enumerate(ops):
        env.process(driver(i, start, src, dst, nbytes, pieces))
    env.run()

    ledgers = {
        name: (ch.bytes_moved, ch.transfer_count)
        for name, ch in server.interconnect.channels.items()
    }
    stats = server.transfer_stats
    # Per-channel grant order: transfers sorted by acquisition instant
    # (submission index breaks exact ties, identically in both runs).
    grant_order = [i for i, _, acq, _ in sorted(done, key=lambda d: (d[2], d[0]))]
    return {
        "transfers": sorted(done),
        "grant_order": grant_order,
        "ledgers": ledgers,
        "stats": (
            stats.count,
            stats.bytes_total,
            repr(stats.busy_time),
            tuple(sorted(stats.per_route.items())),
        ),
        "now": repr(env.now),
        "events": env.events_processed,
    }


_op = st.tuples(
    st.floats(0.0, 0.02),                       # start offset
    st.integers(0, 3),                          # src
    st.integers(0, 4),                          # dst (4 == DRAM)
    st.floats(1.0, 512 * MiB),                  # nbytes
    st.integers(1, 3),                          # pieces
)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=25), topology=st.sampled_from(["p2p", "nvswitch"]))
def test_fastpath_identical_to_resource_path(ops, topology):
    """Random interleavings: both paths agree on *everything* observable
    — per-transfer timestamps, grant order, ledgers, stats, final clock
    — and the fast path does it in no more events."""
    ops = [op for op in ops if op[1] != op[2]]
    if not ops:
        return
    off = _run_schedule(ops, topology, fastpath=False)
    on = _run_schedule(ops, topology, fastpath=True)
    assert on["transfers"] == off["transfers"]
    assert on["grant_order"] == off["grant_order"]
    assert on["ledgers"] == off["ledgers"]
    assert on["stats"] == off["stats"]
    assert on["now"] == off["now"]
    assert on["events"] <= off["events"]


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.floats(4 * MiB, 256 * MiB), min_size=2, max_size=10),
    gap=st.floats(0.0, 2e-6),
)
def test_fifo_pileup_on_one_route(sizes, gap):
    """Back-to-back transfers on a single contended route: the analytic
    grant rule (max over route cursors) reproduces the Resource FIFO's
    grant instants and contention waits exactly."""
    ops = [(i * gap, 0, 1, size, 1) for i, size in enumerate(sizes)]
    off = _run_schedule(ops, "nvswitch", fastpath=False, n_gpus=2)
    on = _run_schedule(ops, "nvswitch", fastpath=True, n_gpus=2)
    assert on["transfers"] == off["transfers"]
    # Contention really occurred (otherwise the property is vacuous:
    # the arrival gap is far below any 4 MiB wire time) …
    waits = [acq - start for _, start, acq, _ in on["transfers"]]
    assert any(w > 0 for w in waits)
    # … and the fast path modelled the pile-up in fewer events.
    assert on["events"] < off["events"]


def test_mixed_mode_fifo_is_exact():
    """Per-transfer overrides interleave both paths on one route; FIFO
    order and completion times must match an all-Resource run."""
    def run(overrides):
        env = Environment()
        server = Server(env, n_gpus=2, transfer_fastpath=True)
        done = []

        def driver(i, start, fastpath):
            yield env.timeout(start)
            t = Transfer(
                env, server.interconnect, server.gpus[0], server.gpus[1],
                64 * MiB, stats=server.transfer_stats, fastpath=fastpath,
            )
            yield from t.run()
            done.append((i, t.acquired_at, t.finished_at, t.path))
        for i, fastpath in enumerate(overrides):
            env.process(driver(i, i * 1e-4, fastpath))
        env.run()
        return done

    overrides = [True, False, True, True, False, True]
    mixed = run(overrides)
    reference = run([False] * len(overrides))
    assert [d[:3] for d in mixed] == [d[:3] for d in reference]
    # The first transfer really ran analytically; the one that asked for
    # the Resource path got it, and queued behind the fast token.
    assert mixed[0][3] == "fast"
    assert mixed[1][3] == "resource"


# ---------------------------------------------------------------------------
# Fallback triggers
# ---------------------------------------------------------------------------
def _one_transfer(server, env, **kwargs):
    t = Transfer(
        env, server.interconnect, server.gpus[0], server.gpus[1], 32 * MiB,
        stats=server.transfer_stats, **kwargs
    )
    proc = env.process(t.run())
    return t, proc


def test_fastpath_off_by_default():
    env = Environment()
    server = Server(env, n_gpus=2)
    t, _ = _one_transfer(server, env)
    env.run()
    assert t.path == "resource"


def test_fastpath_engages_when_enabled():
    env = Environment()
    server = Server(env, n_gpus=2, transfer_fastpath=True)
    t, _ = _one_transfer(server, env)
    env.run()
    assert t.path == "fast"
    # The channels surrendered their fast tokens at completion and the
    # cursors sit exactly at the recorded finish instant.
    for ch in server.interconnect.route(server.gpus[0], server.gpus[1]).channels:
        assert ch.fast_inflight == 0
        assert ch.engine.users == [] and ch.engine.queue == []
        assert ch.busy_until == t.finished_at


def test_pending_fault_schedule_forces_resource_path():
    """install() invalidates the targets' timelines *immediately*, for
    the fault's whole lifetime — not just while the fault is applied."""
    env = Environment()
    server = Server(env, n_gpus=2, transfer_fastpath=True)
    injector = FaultInjector(server)
    injector.install(FaultSchedule([
        LinkDegradation(at=5.0, duration=2.0, channel="nvlink:gpu0->gpu1", factor=0.25)
    ]))
    route = server.interconnect.route(server.gpus[0], server.gpus[1])
    assert all(ch.fault_scheduled for ch in route.channels)

    t, _ = _one_transfer(server, env)  # starts at t=0, fault not yet applied
    env.run(until=1.0)
    assert t.path == "resource"
    # After the fault clears, the timeline marker lifts and the fast
    # path re-engages.
    env.run(until=8.0)
    assert all(not ch.fault_scheduled for ch in route.channels)
    t2, _ = _one_transfer(server, env)
    env.run()
    assert t2.path == "fast"


def test_gpu_fault_schedule_forces_resource_path_and_lifts_on_cancel():
    env = Environment()
    server = Server(env, n_gpus=2, transfer_fastpath=True)
    injector = FaultInjector(server)
    injector.install(FaultSchedule([GpuFailure(at=5.0, duration=1.0, gpu="gpu1")]))
    assert server.gpus[1].fault_scheduled == 1
    t, _ = _one_transfer(server, env)
    env.run(until=1.0)
    assert t.path == "resource"
    injector.cancel()
    env.run(until=2.0)
    assert server.gpus[1].fault_scheduled == 0
    t2, _ = _one_transfer(server, env)
    env.run()
    assert t2.path == "fast"


def test_stalled_channel_rejects_both_paths():
    env = Environment()
    server = Server(env, n_gpus=2, transfer_fastpath=True)
    server.interconnect.route(server.gpus[0], server.gpus[1]).channels[0].stall()
    caught = []

    def proc():
        try:
            yield from server.transfer(server.gpus[0], server.gpus[1], 8 * MiB)
        except TransferStalled as exc:
            caught.append(exc)
    env.process(proc())
    env.run()
    assert len(caught) == 1


def test_faulted_run_identical_across_paths():
    """A full fault-schedule run (stall, then degradation, mid-stream)
    agrees byte-for-byte across the toggle: faulty epochs fall back,
    healthy epochs run fast, and the seams line up."""
    def run(fastpath):
        env = Environment()
        server = Server(env, n_gpus=2, transfer_fastpath=fastpath)
        injector = FaultInjector(server)
        injector.install(FaultSchedule([
            LinkDegradation(at=0.004, duration=0.004, channel="nvlink:gpu0->gpu1", factor=0.5),
            DmaStall(at=0.002, duration=0.001, channel="pcie-up:gpu0"),
        ]))
        done = []

        def traffic():
            for i in range(40):
                try:
                    t = Transfer(
                        env, server.interconnect, server.gpus[0],
                        server.gpus[1] if i % 3 else server.dram,
                        16 * MiB, stats=server.transfer_stats,
                    )
                    yield from t.run()
                    done.append((i, t.acquired_at, t.finished_at, t.path))
                except TransferStalled:
                    done.append((i, "stalled", env.now, None))
                    yield env.timeout(0.001)
        env.process(traffic())
        env.run()
        stats = server.transfer_stats
        return done, (stats.count, stats.bytes_total, repr(stats.busy_time)), injector.log

    done_off, stats_off, log_off = run(False)
    done_on, stats_on, log_on = run(True)
    assert [d[:3] for d in done_on] == [d[:3] for d in done_off]
    assert stats_on == stats_off
    assert log_on == log_off
    paths = {d[3] for d in done_on if d[3]}
    assert paths == {"fast", "resource"}  # both regimes actually exercised


# ---------------------------------------------------------------------------
# Satellite: live degradation semantics on both paths
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fastpath", [False, True], ids=["resource", "fast"])
def test_live_degradation_prices_new_transfers_only(fastpath):
    """A transfer already on the wire when ``degradation`` changes keeps
    its healthy-bandwidth completion; one starting afterwards pays the
    degraded bandwidth — identically on both paths."""
    env = Environment()
    server = Server(env, n_gpus=2, transfer_fastpath=fastpath)
    g0, g1 = server.gpus
    route = server.interconnect.route(g0, g1)
    link = route.channels[0]
    healthy_time = route.transfer_time(256 * MiB)
    transfers = {}

    def start(name, at, nbytes):
        yield env.timeout(at)
        t = Transfer(env, server.interconnect, g0, g1, nbytes)
        transfers[name] = t
        yield from t.run()

    def degrade_midflight():
        # Inside transfer "early"'s wire window, before "late" starts.
        yield env.timeout(healthy_time / 2)
        link.degrade(0.25)

    env.process(start("early", 0.0, 256 * MiB))
    env.process(degrade_midflight())
    env.process(start("late", healthy_time * 1.5, 256 * MiB))
    env.run()

    early, late = transfers["early"], transfers["late"]
    # Already on the wire: unaffected by the mid-flight degradation.
    assert early.finished_at == pytest.approx(healthy_time)
    # Started after the change: pays the degraded bandwidth.  (On the
    # fast path this is the unhealthy-route fallback doing its job.)
    degraded_time = route.transfer_time(256 * MiB)
    assert link.degradation == 0.25
    assert late.duration == pytest.approx(degraded_time)
    assert late.duration > early.duration * 2
    if fastpath:
        assert early.path == "fast"
        assert late.path == "resource"  # degraded route -> exact path


@pytest.mark.parametrize("fastpath", [False, True], ids=["resource", "fast"])
def test_restore_reprices_subsequent_transfers(fastpath):
    env = Environment()
    server = Server(env, n_gpus=2, transfer_fastpath=fastpath)
    g0, g1 = server.gpus
    route = server.interconnect.route(g0, g1)
    link = route.channels[0]
    link.degrade(0.5)
    degraded = server.transfer_time(g0, g1, 128 * MiB)

    results = []

    def one(nbytes):
        t = Transfer(env, server.interconnect, g0, g1, nbytes)
        yield from t.run()
        results.append((t.duration, t.path))

    env.process(one(128 * MiB))
    env.run()
    link.restore()
    env.process(one(128 * MiB))
    env.run()
    assert results[0][0] == pytest.approx(degraded)
    assert results[1][0] == pytest.approx(server.transfer_time(g0, g1, 128 * MiB))
    assert results[1][0] < results[0][0]
    if fastpath:
        assert results[0][1] == "resource" and results[1][1] == "fast"


# ---------------------------------------------------------------------------
# Satellite: mid-acquisition teardown (generator path)
# ---------------------------------------------------------------------------
def test_interrupted_transfer_releases_granted_and_queued_claims():
    """A Transfer interrupted while waiting in ``AllOf`` — some channel
    requests granted, others still queued — must surrender everything
    without corrupting FIFO order for the waiters behind it."""
    env = Environment()
    server = Server(env, n_gpus=4, topology="nvswitch")
    g0, g1, g2, _ = server.gpus
    ic = server.interconnect
    egress0, ingress1 = ic.route(g0, g1).sorted_channels

    # Occupy g1's ingress port so a g0->g1 transfer is granted its
    # egress hop but queues on the ingress hop.
    blocker_time = server.transfer_time(g2, g1, 512 * MiB)
    blocker = Transfer(env, ic, g2, g1, 512 * MiB)
    env.process(blocker.run())

    victim = Transfer(env, ic, g0, g1, 64 * MiB)
    interrupted = []

    def victim_driver():
        try:
            yield from victim.run()
        except Interrupt as intr:
            interrupted.append(intr.cause)
    victim_proc = env.process(victim_driver())

    # Waiters *behind* the victim on each of its two hops.
    done = []

    def chase(name, transfer, delay):
        yield env.timeout(delay)
        yield from transfer.run()
        done.append((name, transfer.acquired_at, transfer.finished_at))

    behind_same_route = Transfer(env, ic, g0, g1, 32 * MiB)     # both hops
    env.process(chase("same-route", behind_same_route, 1e-6))
    behind_egress = Transfer(env, ic, g0, g2, 32 * MiB)         # egress hop only
    env.process(chase("egress-only", behind_egress, 2e-6))

    def interrupter():
        yield env.timeout(blocker_time / 4)
        # The victim is mid-acquisition: its egress request is granted,
        # its ingress request queued behind the blocker, and both
        # chasers queued behind *it*.
        assert victim.acquired_at is None
        assert len(egress0.engine.users) == 1
        assert len(egress0.engine.queue) == 2
        assert len(ingress1.engine.queue) == 2
        victim_proc.interrupt("teardown")
    env.process(interrupter())
    env.run()

    assert interrupted == ["teardown"]
    assert victim.finished_at is None

    # Every channel drained: no leaked users or queue entries.
    for ch in ic.channels.values():
        assert ch.engine.users == [], ch.name
        assert ch.engine.queue == [], ch.name

    # FIFO for the waiters behind the victim survived: the same-route
    # chaser inherited the victim's egress grant immediately and the
    # ingress right when the blocker released it; the egress-only chaser
    # then got the egress the instant the same-route chaser finished.
    by_name = {name: (acq, fin) for name, acq, fin in done}
    assert by_name["same-route"][0] == pytest.approx(blocker_time)
    assert by_name["egress-only"][0] == pytest.approx(by_name["same-route"][1])
    assert all(t.finished_at is not None for t in (blocker, behind_same_route, behind_egress))


def test_interrupted_transfer_matches_never_started_run():
    """After the teardown, remaining waiters complete at the same times
    as in a run where the victim never existed."""
    def run(with_victim):
        env = Environment()
        server = Server(env, n_gpus=4, topology="nvswitch")
        g0, g1, g2, _ = server.gpus
        ic = server.interconnect
        blocker_time = server.transfer_time(g2, g1, 512 * MiB)
        env.process(Transfer(env, ic, g2, g1, 512 * MiB).run())
        if with_victim:
            def victim_driver():
                try:
                    yield from Transfer(env, ic, g0, g1, 64 * MiB).run()
                except Interrupt:
                    pass
            victim_proc = env.process(victim_driver())

            def interrupter():
                yield env.timeout(blocker_time / 4)
                victim_proc.interrupt("teardown")
            env.process(interrupter())
        done = []

        def chase(name, t, delay):
            yield env.timeout(delay)
            yield from t.run()
            done.append((name, t.acquired_at, t.finished_at))
        env.process(chase("a", Transfer(env, ic, g0, g1, 32 * MiB), blocker_time / 2))
        env.process(chase("b", Transfer(env, ic, g0, g2, 32 * MiB), blocker_time / 2))
        env.run()
        return sorted(done)

    assert run(with_victim=True) == run(with_victim=False)


# ---------------------------------------------------------------------------
# Satellite: copy() wrapper parity
# ---------------------------------------------------------------------------
class _SpyTelemetry:
    def __init__(self):
        self.seen = []

    def record_transfer(self, transfer, channels):
        self.seen.append((transfer, tuple(channels)))


def test_copy_wrapper_forwards_telemetry_and_ctx():
    env = Environment()
    server = Server(env, n_gpus=2)
    spy = _SpyTelemetry()

    env.process(
        dma_copy(
            env, server.interconnect, server.gpus[0], server.gpus[1],
            4 * MiB, stats=server.transfer_stats, telemetry=spy, ctx=7,
        )
    )
    env.run()
    [(transfer, channels)] = spy.seen
    assert transfer.telemetry is spy
    assert transfer.ctx == 7
    assert channels  # the route's channels reached the hub too


# ---------------------------------------------------------------------------
# SleepUntil kernel primitive
# ---------------------------------------------------------------------------
def test_sleep_until_wakes_at_exact_absolute_time():
    env = Environment()
    # A target that ``now + (at - now)`` arithmetic would miss by one ulp.
    at = 0.30000000000000004
    seen = []

    def sleeper():
        yield env.timeout(0.1)
        yield SleepUntil(env, at)
        seen.append(env.now)
    env.process(sleeper())
    env.run()
    assert seen == [at]


def test_sleep_until_rejects_the_past():
    env = Environment()

    def sleeper():
        yield env.timeout(1.0)
        with pytest.raises(ValueError):
            SleepUntil(env, 0.5)
        yield env.timeout(0.1)
    env.process(sleeper())
    env.run()
    assert env.now == pytest.approx(1.1)


def test_sleep_until_orders_like_timeout():
    """Same timestamp, insertion order tie-break — identical to Timeout."""
    env = Environment()
    order = []

    def a():
        yield SleepUntil(env, 1.0)
        order.append("a")

    def b():
        yield env.timeout(1.0)
        order.append("b")
    env.process(a())
    env.process(b())
    env.run()
    assert order == ["a", "b"]
