"""Tests for the aqua-repro command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig01", "fig07", "fig14", "tables", "e2e"):
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "fig07" in capsys.readouterr().out


def test_every_command_has_a_parser():
    parser = build_parser()
    # Parsing the bare subcommand name must succeed for every command.
    for name in COMMANDS:
        args = parser.parse_args([name])
        assert args.command == name


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "OPT-30B" in out
    assert "Parti prompts" in out


def test_fig02_command(capsys):
    assert main(["fig02"]) == 0
    out = capsys.readouterr().out
    assert "AudioGen" in out
    assert "Llama-2-13B" in out


def test_fig07_command_with_duration(capsys):
    assert main(["fig07", "--duration", "15"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "aqua+sd" in out


def test_fig14_command_small(capsys):
    assert main(["fig14", "--gpus", "16"]) == 0
    out = capsys.readouterr().out
    assert "mixed_s" in out


def test_fig18_command(capsys):
    assert main(["fig18", "--duration", "10"]) == 0
    out = capsys.readouterr().out
    assert "per-consumer tokens" in out


def test_e2e_command(capsys):
    assert main(["e2e"]) == 0
    out = capsys.readouterr().out
    assert "balanced" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_all_command_writes_results(tmp_path, capsys):
    out = tmp_path / "results"
    assert main(["all", "--out", str(out), "--only", "tables"]) == 0
    assert (out / "tables.json").exists()
    assert (out / "manifest.json").exists()


def test_sweep_command(capsys):
    assert main(["sweep", "--rates", "1", "--count", "10"]) == 0
    out = capsys.readouterr().out
    assert "rct_penalty" in out


def test_observe_command(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.prom"
    report = tmp_path / "report.json"
    assert (
        main(
            [
                "observe",
                "--duration", "20",
                "--trace", str(trace),
                "--metrics", str(metrics),
                "--report", str(report),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Latency attribution" in out
    for component in ("queueing", "prefill_compute", "decode_hbm", "offload_fetch"):
        assert component in out

    import json

    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e.get("ph") in ("s", "t", "f") for e in events)

    from repro.telemetry import parse_prometheus_text

    samples = parse_prometheus_text(metrics.read_text())
    assert "aqua_engine_tokens_generated_total" in samples

    rep = json.loads(report.read_text())
    assert rep["count"] >= 1


def test_observe_command_no_faults(capsys):
    assert main(["observe", "--duration", "10", "--no-faults"]) == 0
    assert "dma-stall" not in capsys.readouterr().out


def test_ambient_trace_flag_on_figure_command(tmp_path, capsys):
    """Every figure command accepts --trace and writes a Chrome trace."""
    trace = tmp_path / "fig07.json"
    assert main(["fig07", "--duration", "10", "--trace", str(trace)]) == 0
    assert "trace written to" in capsys.readouterr().out

    import json

    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e["ph"] == "X" for e in events)


def test_trace_flag_registered_uniformly():
    """The shared --trace option is present on every experiment command."""
    parser = build_parser()
    for name in ("fig01", "fig07", "fig13", "e2e", "sweep", "resilience", "observe"):
        args = parser.parse_args([name, "--trace", "out.json"])
        assert args.trace == "out.json"
