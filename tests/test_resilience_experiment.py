"""End-to-end acceptance tests for the resilience experiment.

The documented scenario (``docs/resilience.md``) must keep holding:
zero dropped requests, backoff retries visible in the trace, and
goodput back within 5% of the fault-free control run after the faults
clear.
"""

import pytest

from repro.experiments.resilience import default_fault_schedule, resilience_experiment
from repro.faults import FaultSchedule


@pytest.fixture(scope="module")
def result():
    return resilience_experiment()


@pytest.mark.slow
def test_no_request_is_dropped(result):
    assert result["dropped_requests"] == 0
    assert result["tokens_total"] > 0


@pytest.mark.slow
def test_retries_are_visible_in_the_trace(result):
    assert result["retries"] > 0
    assert result["retries_in_trace"] == result["retries"]
    # The injector's apply/clear markers are on the trace too.
    fault_instants = [
        ev for ev in result["tracer"].instants if ev.track == "faults"
    ]
    assert len(fault_instants) >= 2 * len(default_fault_schedule())


@pytest.mark.slow
def test_gpu_failure_costs_a_requeue_not_a_drop(result):
    assert result["requeues"] >= 1
    assert result["lost_tensors"] >= 1


@pytest.mark.slow
def test_goodput_recovers_within_5_percent_of_control(result):
    assert result["recovery_time_s"] is not None
    assert result["recovery_time_s"] <= 10.0
    assert result["post_fault_goodput_ratio"] >= 0.95


@pytest.mark.slow
def test_fault_log_matches_schedule(result):
    schedule = default_fault_schedule()
    applies = {e["event"]: e["t"] for e in result["fault_log"] if "apply" in e["event"]}
    clears = {e["event"]: e["t"] for e in result["fault_log"] if "clear" in e["event"]}
    for fault in schedule:
        assert applies[f"{fault.kind}:apply"] == fault.at
        assert clears[f"{fault.kind}:clear"] == fault.at + fault.duration


@pytest.mark.slow
def test_resilience_experiment_is_deterministic():
    """Fault runs are as bit-identical as fault-free ones."""
    a = resilience_experiment(duration=60.0)
    b = resilience_experiment(duration=60.0)
    assert a["goodput_tokens_per_s"] == b["goodput_tokens_per_s"]
    assert a["retries"] == b["retries"]
    assert a["fault_log"] == b["fault_log"]


@pytest.mark.slow
def test_empty_schedule_matches_control():
    """With no faults the 'faulted' run IS the control run."""
    result = resilience_experiment(schedule=FaultSchedule(), duration=60.0)
    assert result["goodput_tokens_per_s"] == result["control_goodput_tokens_per_s"]
    assert result["retries"] == 0
    assert result["requeues"] == 0
    assert result["recovery_time_s"] == 0.0
