"""Tests for latency attribution: telescoping marks, carve-outs, reports."""

import math

import pytest

from repro.serving import Request
from repro.telemetry import COMPONENTS, LatencyAttributor


def _request(arrival=0.0, req_id=None):
    r = Request(arrival_time=arrival, prompt_tokens=10, max_new_tokens=5)
    return r


def _finish(request, first_token, finish, tokens=5):
    request.record_token(first_token)
    for _ in range(tokens - 1):
        request.record_token(finish)  # timestamps only matter for first/last
    request.finish_time = finish


def test_marks_partition_the_timeline():
    attr = LatencyAttributor()
    r = _request(arrival=1.0)
    attr.observe(r)
    attr.mark(r, "queueing", 2.0)
    attr.mark(r, "prefill_compute", 3.5)
    attr.mark(r, "decode_hbm", 6.0)
    _finish(r, first_token=3.5, finish=6.0)

    got = attr.breakdown(r)
    assert got["queueing"] == pytest.approx(1.0)
    assert got["prefill_compute"] == pytest.approx(1.5)
    assert got["decode_hbm"] == pytest.approx(2.5)
    assert got["other"] == 0.0
    # The headline invariant: components sum to rct exactly.
    assert sum(got.values()) == pytest.approx(r.rct, abs=1e-12)


def test_uncovered_tail_lands_in_other():
    attr = LatencyAttributor()
    r = _request(arrival=0.0)
    attr.observe(r)
    attr.mark(r, "prefill_compute", 1.0)
    _finish(r, first_token=1.0, finish=4.0)  # 3s nobody marked
    got = attr.breakdown(r)
    assert got["other"] == pytest.approx(3.0)
    assert sum(got.values()) == pytest.approx(r.rct)


def test_mark_past_finish_is_clipped():
    attr = LatencyAttributor()
    r = _request(arrival=0.0)
    attr.observe(r)
    attr.mark(r, "prefill_compute", 1.0)
    _finish(r, first_token=1.0, finish=2.0)
    # Decode bookkeeping that runs past the finish time: clipped, not dropped.
    attr.mark(r, "decode_hbm", 3.0)
    got = attr.breakdown(r)
    assert got["decode_hbm"] == pytest.approx(1.0)
    assert sum(got.values()) == pytest.approx(r.rct)


def test_contention_carved_from_next_fetch_mark():
    attr = LatencyAttributor()
    r = _request(arrival=0.0)
    attr.observe(r)
    attr.note_contention(r.req_id, 0.75)
    attr.mark(r, "offload_fetch", 2.0)
    _finish(r, first_token=2.0, finish=2.0)
    got = attr.breakdown(r)
    assert got["link_contention"] == pytest.approx(0.75)
    assert got["offload_fetch"] == pytest.approx(1.25)
    assert sum(got.values()) == pytest.approx(r.rct)


def test_contention_never_exceeds_the_fetch_segment():
    attr = LatencyAttributor()
    r = _request(arrival=0.0)
    attr.observe(r)
    attr.note_contention(r.req_id, 10.0)  # more than the segment holds
    attr.mark(r, "offload_fetch", 1.0)
    totals = attr.components_of(r)
    assert totals["link_contention"] == pytest.approx(1.0)
    assert totals["offload_fetch"] == 0.0
    # The excess stays pending for the next fetch segment.
    attr.mark(r, "offload_fetch", 3.0)
    totals = attr.components_of(r)
    assert totals["link_contention"] == pytest.approx(3.0)


def test_backwards_and_zero_width_marks_are_noops():
    attr = LatencyAttributor()
    r = _request(arrival=5.0)
    attr.observe(r)
    attr.mark(r, "queueing", 5.0)
    attr.mark(r, "queueing", 4.0)
    assert attr.components_of(r)["queueing"] == 0.0


def test_unknown_component_rejected():
    attr = LatencyAttributor()
    r = _request()
    with pytest.raises(ValueError):
        attr.mark(r, "gpu_naptime", 1.0)


def test_breakdown_requires_finished_request():
    attr = LatencyAttributor()
    r = _request()
    attr.observe(r)
    with pytest.raises(ValueError):
        attr.breakdown(r)


def test_report_schema_and_aggregates():
    attr = LatencyAttributor()
    finished = []
    for i in range(3):
        r = _request(arrival=float(i))
        attr.observe(r)
        attr.mark(r, "queueing", r.arrival_time + 1.0)
        attr.mark(r, "decode_hbm", r.arrival_time + 3.0)
        _finish(r, first_token=r.arrival_time + 1.0, finish=r.arrival_time + 3.0)
        finished.append(r)
    unfinished = _request(arrival=99.0)
    attr.observe(unfinished)

    report = attr.report()
    assert report["count"] == 3
    assert report["components"] == list(COMPONENTS)
    for entry in report["requests"]:
        assert sum(entry["components"].values()) == pytest.approx(entry["rct"])
        assert set(entry["per_token"]) == set(COMPONENTS)
        # TTFT components only cover time before the first token.
        assert sum(entry["ttft_components"].values()) == pytest.approx(entry["ttft"])
    agg = report["aggregates"]
    assert agg["queueing"]["mean"] == pytest.approx(1.0)
    assert agg["decode_hbm"]["p50"] == pytest.approx(2.0)
    # Components nobody used aggregate to 0 over finished requests...
    assert agg["offload_fetch"]["mean"] == pytest.approx(0.0)


def test_empty_report_aggregates_are_nan():
    report = LatencyAttributor().report()
    assert report["count"] == 0
    assert report["requests"] == []
    assert all(
        math.isnan(report["aggregates"][c]["p99"]) for c in COMPONENTS
    )
