"""Documentation <-> code consistency guards.

DESIGN.md's per-experiment index and EXPERIMENTS.md's bench references
must point at files that exist, and every example mentioned in the
README must be present — so the documentation can be trusted as a map
of the repository.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def referenced_bench_files(text: str) -> set[str]:
    names = set(re.findall(r"(test_[a-z0-9_]+\.py)", text))
    return names


def test_design_md_bench_references_exist():
    text = (ROOT / "DESIGN.md").read_text()
    for name in referenced_bench_files(text):
        assert (ROOT / "benchmarks" / name).exists() or (
            ROOT / "tests" / name
        ).exists(), f"DESIGN.md references missing file {name}"


def test_experiments_md_bench_references_exist():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for name in referenced_bench_files(text):
        assert (ROOT / "benchmarks" / name).exists() or (
            ROOT / "tests" / name
        ).exists(), f"EXPERIMENTS.md references missing bench/test {name}"


def test_doc_test_pointers_resolve():
    """Every ``tests/<file>.py::<test>`` pointer in the docs must resolve
    to a real test function, so doc claims stay verifiable."""
    refs = []
    docs = sorted((ROOT / "docs").glob("*.md"))
    assert ROOT / "docs" / "replication.md" in docs
    assert ROOT / "docs" / "frontier.md" in docs
    for doc in docs + [ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md"]:
        refs.extend(
            re.findall(r"(test_[a-z0-9_]+\.py)::(test_[a-z0-9_]+)", doc.read_text())
        )
    assert refs, "expected at least one tests/...::test_* pointer in the docs"
    for fname, tname in refs:
        candidates = [ROOT / "tests" / fname, ROOT / "benchmarks" / fname]
        path = next((p for p in candidates if p.exists()), None)
        assert path is not None, f"docs reference missing file {fname}"
        assert re.search(rf"^def {tname}\b", path.read_text(), re.M), (
            f"docs reference missing test {fname}::{tname}"
        )


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for name in re.findall(r"`([a-z0-9_]+\.py)`", text):
        if (ROOT / "examples" / name).exists():
            continue
        if name.startswith("test_"):
            hits = list((ROOT / "benchmarks").glob(name)) + list(
                (ROOT / "tests").glob(name)
            )
        else:
            # Non-example code files mentioned in prose must exist in src/.
            hits = list((ROOT / "src").rglob(name))
        assert hits, f"README references missing file {name}"


def test_every_paper_figure_has_a_bench():
    bench_dir = ROOT / "benchmarks"
    benches = {p.name for p in bench_dir.glob("test_*.py")}
    for fig in ("fig01", "fig02", "fig03", "fig07", "fig08", "fig09",
                "fig10", "fig11", "fig12", "fig13", "fig14", "fig18"):
        assert any(fig in b for b in benches), f"no bench for {fig}"
    assert any("fig15" in b or "fig15_17" in b for b in benches)
    assert any("tables" in b for b in benches)
    assert any("e2e" in b for b in benches)


def test_every_example_is_smoke_tested():
    examples = {p.name for p in (ROOT / "examples").glob("*.py")}
    test_text = (ROOT / "tests" / "test_examples.py").read_text()
    for example in examples:
        assert example in test_text, f"{example} has no smoke test"


def test_cli_commands_documented_in_help():
    from repro.cli import COMMANDS, build_parser

    help_text = build_parser().format_help()
    for name in COMMANDS:
        assert name in help_text


def test_cli_usages_in_docs_match_the_parser():
    """Every ``aqua-repro <subcommand> --flag`` the docs show must parse:
    the subcommand must exist and each flag must be an option of that
    subcommand (catches docs drifting behind CLI changes)."""
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    options = {
        name: {opt for act in sub._actions for opt in act.option_strings}
        for name, sub in subparsers.choices.items()
    }

    # A usage is "aqua-repro <word> ...rest of line", where the rest is
    # cut at a backtick (end of inline code) or a shell comment.
    usage_re = re.compile(r"aqua-repro\s+([a-z][a-z0-9_]*)([^`#\n]*)")
    docs = sorted((ROOT / "docs").glob("*.md"))
    docs += [ROOT / "README.md", ROOT / "EXPERIMENTS.md", ROOT / "DESIGN.md"]
    usages = []
    for doc in docs:
        for match in usage_re.finditer(doc.read_text()):
            flags = re.findall(r"--[a-z][a-z0-9-]*", match.group(2))
            usages.append((doc.name, match.group(1), flags))

    assert any(cmd == "replicate" for _, cmd, _ in usages)
    # docs/frontier.md must actually show the frontier command in use,
    # and with its load-grid flag, so the guard below exercises it.
    assert any(
        doc == "frontier.md" and cmd == "frontier" for doc, cmd, _ in usages
    ), "docs/frontier.md must demonstrate 'aqua-repro frontier'"
    assert any(
        cmd == "frontier" and "--rates" in flags for _, cmd, flags in usages
    )
    for doc, cmd, flags in usages:
        assert cmd in options, f"{doc}: unknown subcommand 'aqua-repro {cmd}'"
        for flag in flags:
            assert flag in options[cmd], (
                f"{doc}: 'aqua-repro {cmd}' does not accept {flag}"
            )
