"""Documentation <-> code consistency guards.

DESIGN.md's per-experiment index and EXPERIMENTS.md's bench references
must point at files that exist, and every example mentioned in the
README must be present — so the documentation can be trusted as a map
of the repository.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def referenced_bench_files(text: str) -> set[str]:
    names = set(re.findall(r"(test_[a-z0-9_]+\.py)", text))
    return names


def test_design_md_bench_references_exist():
    text = (ROOT / "DESIGN.md").read_text()
    for name in referenced_bench_files(text):
        assert (ROOT / "benchmarks" / name).exists() or (
            ROOT / "tests" / name
        ).exists(), f"DESIGN.md references missing file {name}"


def test_experiments_md_bench_references_exist():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for name in referenced_bench_files(text):
        assert (ROOT / "benchmarks" / name).exists() or (
            ROOT / "tests" / name
        ).exists(), f"EXPERIMENTS.md references missing bench/test {name}"


def test_doc_test_pointers_resolve():
    """Every ``tests/<file>.py::<test>`` pointer in the docs must resolve
    to a real test function, so doc claims stay verifiable."""
    refs = []
    for doc in [ROOT / "docs" / "architecture.md", ROOT / "docs" / "resilience.md",
                ROOT / "docs" / "observability.md",
                ROOT / "docs" / "performance.md",
                ROOT / "docs" / "parallelism.md",
                ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md"]:
        refs.extend(
            re.findall(r"(test_[a-z0-9_]+\.py)::(test_[a-z0-9_]+)", doc.read_text())
        )
    assert refs, "expected at least one tests/...::test_* pointer in the docs"
    for fname, tname in refs:
        candidates = [ROOT / "tests" / fname, ROOT / "benchmarks" / fname]
        path = next((p for p in candidates if p.exists()), None)
        assert path is not None, f"docs reference missing file {fname}"
        assert re.search(rf"^def {tname}\b", path.read_text(), re.M), (
            f"docs reference missing test {fname}::{tname}"
        )


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for name in re.findall(r"`([a-z0-9_]+\.py)`", text):
        if (ROOT / "examples" / name).exists():
            continue
        if name.startswith("test_"):
            hits = list((ROOT / "benchmarks").glob(name)) + list(
                (ROOT / "tests").glob(name)
            )
        else:
            # Non-example code files mentioned in prose must exist in src/.
            hits = list((ROOT / "src").rglob(name))
        assert hits, f"README references missing file {name}"


def test_every_paper_figure_has_a_bench():
    bench_dir = ROOT / "benchmarks"
    benches = {p.name for p in bench_dir.glob("test_*.py")}
    for fig in ("fig01", "fig02", "fig03", "fig07", "fig08", "fig09",
                "fig10", "fig11", "fig12", "fig13", "fig14", "fig18"):
        assert any(fig in b for b in benches), f"no bench for {fig}"
    assert any("fig15" in b or "fig15_17" in b for b in benches)
    assert any("tables" in b for b in benches)
    assert any("e2e" in b for b in benches)


def test_every_example_is_smoke_tested():
    examples = {p.name for p in (ROOT / "examples").glob("*.py")}
    test_text = (ROOT / "tests" / "test_examples.py").read_text()
    for example in examples:
        assert example in test_text, f"{example} has no smoke test"


def test_cli_commands_documented_in_help():
    from repro.cli import COMMANDS, build_parser

    help_text = build_parser().format_help()
    for name in COMMANDS:
        assert name in help_text
