"""Tests for vLLM's swap preemption mode."""

import pytest

from repro.hardware import Server
from repro.models import CODELLAMA_34B, MISTRAL_7B
from repro.serving import Request, VLLMEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def make_engine(mode="swap", model=CODELLAMA_34B):
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, model, preemption_mode=mode)
    engine.start()
    return env, server, engine


def overload(n=10, prompt=2000, gen=4000):
    return [
        Request(arrival_time=0.0, prompt_tokens=prompt, max_new_tokens=gen)
        for _ in range(n)
    ]


def test_invalid_mode_rejected():
    env = Environment()
    server = Server(env, n_gpus=1)
    with pytest.raises(ValueError):
        VLLMEngine(server.gpus[0], server, MISTRAL_7B, preemption_mode="evict")


def test_swap_preemption_completes_everything():
    env, server, engine = make_engine("swap")
    requests = overload()
    submit_all(env, engine, requests)
    env.run(until=2500)
    assert engine.preemptions > 0
    assert all(r.done for r in requests)
    assert engine.swapped_out == []
    assert engine.allocator.used_blocks == 0
    # No swap bytes leaked in DRAM.
    swap_tags = [
        t for t in server.dram.pool.reservations if ":swap" in t
    ]
    assert swap_tags == []


def test_swap_preserves_generated_tokens():
    """Unlike recompute, swap resumes without redoing generation; every
    request ends with exactly its requested token count either way."""
    env, server, engine = make_engine("swap")
    requests = overload(n=6, gen=3000)
    submit_all(env, engine, requests)
    env.run(until=2500)
    for r in requests:
        assert r.generated_tokens == r.max_new_tokens


def test_swap_uses_dram_during_preemption():
    env, server, engine = make_engine("swap")
    requests = overload()
    submit_all(env, engine, requests)
    peak_dram = [0]

    def watch(env):
        while True:
            peak_dram[0] = max(peak_dram[0], server.dram.pool.used)
            yield env.timeout(0.5)

    env.process(watch(env))
    env.run(until=600)
    assert peak_dram[0] > 0


def test_recompute_does_not_touch_dram():
    env, server, engine = make_engine("recompute")
    requests = overload()
    submit_all(env, engine, requests)
    peak_dram = [0]

    def watch(env):
        while True:
            peak_dram[0] = max(peak_dram[0], server.dram.pool.used)
            yield env.timeout(0.5)

    env.process(watch(env))
    env.run(until=600)
    assert peak_dram[0] == 0
    assert engine.preemptions > 0


def test_swap_and_recompute_both_finish_with_same_tokens():
    def total_tokens(mode):
        env, server, engine = make_engine(mode)
        requests = overload(n=6, gen=2000)
        submit_all(env, engine, requests)
        env.run(until=2500)
        assert all(r.done for r in requests)
        return engine.metrics.tokens_generated

    swap_total = total_tokens("swap")
    recompute_total = total_tokens("recompute")
    # Same number of tokens delivered either way (work conservation).
    assert swap_total == recompute_total
