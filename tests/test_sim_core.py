"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.sim.core import EmptySchedule

#: Both schedule backends must satisfy every kernel contract below that
#: is parametrized over this list.
SCHEDULERS = ["heap", "calendar"]


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_value_passed_through():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    env.run()
    assert p.value == 42
    assert p.ok


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25)
    assert env.now == 25


def test_run_until_event():
    env = Environment()

    def proc(env):
        yield env.timeout(7)
        return "done"

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == "done"
    assert env.now == 7


def test_run_until_past_time_raises():
    env = Environment(initial_time=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_events_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, name):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, 3, "c"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1)
        order.append(name)

    for name in "abcd":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcd")


def test_nested_process_waiting():
    env = Environment()

    def child(env):
        yield env.timeout(5)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    env.run()
    assert p.value == "child-result"


def test_event_succeed_resumes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(4)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(4, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("bad")

    env.process(bad(env))
    with pytest.raises(ValueError, match="bad"):
        env.run()


def test_handled_child_failure_does_not_propagate():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1)
        raise ValueError("bad")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["bad"]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    with pytest.raises(SimulationError):
        env.process(bad(env))
        env.run()


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(2, value="a")
        t2 = env.timeout(5, value="b")
        results = yield AllOf(env, [t1, t2])
        return sorted(results.values())

    p = env.process(proc(env))
    env.run()
    assert env.now == 5
    assert p.value == ["a", "b"]


def test_any_of_waits_for_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(2, value="fast")
        t2 = env.timeout(5, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return list(results.values())

    p = env.process(proc(env))
    env.run(until=p)
    assert env.now == 2
    assert p.value == ["fast"]


def test_and_or_operators():
    env = Environment()

    def proc(env):
        yield env.timeout(1) & env.timeout(2)
        mid = env.now
        yield env.timeout(10) | env.timeout(3)
        return (mid, env.now)

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (2, 5)


def test_empty_all_of_succeeds_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            seen.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake-up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert seen == [(3, "wake-up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()

    def selfish(env):
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(1)

    env.process(selfish(env))
    env.run()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(5)
        log.append(("finished", env.now))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 2), ("finished", 7)]


def test_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(9)
    assert env.peek() == 9


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    gate = env.event()
    with pytest.raises(SimulationError):
        env.run(until=gate)


def test_many_processes_complete():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(i % 7 + 1)
        done.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert sorted(done) == list(range(500))


def test_zero_delay_timeout_runs_at_same_time():
    env = Environment()

    def proc(env):
        yield env.timeout(0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


# ---------------------------------------------------------------------------
# events_processed accounting.
#
# The counter is maintained explicitly by the event loop (it used to be
# derived as ``_eid - len(self._queue)``, which miscounts whenever
# scheduled entries outlive their usefulness — e.g. the stale wakeup of
# an interrupted sleep — and assumes the schedule is the builtin list).
# These tests pin the explicit semantics: one increment per retired
# entry, exact across run()/step() mixes, failures, and both backends.
# ---------------------------------------------------------------------------
def _three_sleepers(env):
    def proc(env, d):
        yield env.timeout(d)

    for d in (1.0, 1.0, 2.0):
        env.process(proc(env, d))


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_events_processed_matches_manual_step_loop(scheduler):
    auto = Environment(scheduler=scheduler)
    _three_sleepers(auto)
    auto.run()

    manual = Environment(scheduler=scheduler)
    _three_sleepers(manual)
    steps = 0
    while True:
        try:
            manual.step()
        except EmptySchedule:
            break
        steps += 1
    assert auto.events_processed == manual.events_processed == steps
    assert auto.events_processed > 0


def test_events_processed_ignores_pending_events():
    """Scheduled-but-not-yet-retired entries must not count."""
    env = Environment()
    _three_sleepers(env)
    env.run(until=1.5)
    mid = env.events_processed
    assert mid > 0
    assert len(env._queue) > 0  # the d=2.0 wakeup is still scheduled
    env.run()
    # The remaining process retires its wakeup plus its terminal event.
    assert env.events_processed == mid + 2


def test_events_processed_counts_stale_wakeup_of_interrupted_sleep():
    """An interrupt strands the victim's original wakeup in the queue;
    the entry is still retired (and counted) when its time comes."""
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run(until=2.0)
    mid = env.events_processed
    # Only the stale t=100 wakeup remains.
    assert len(env._queue) == 1
    env.run()
    assert env.now == 100.0
    assert env.events_processed == mid + 1


def test_events_processed_counts_defused_failure():
    """A failure somebody waited for (defused) still retires its event."""
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError:
            pass

    env.process(parent(env))
    env.run()
    witness = Environment()

    def good(env):
        yield env.timeout(1)

    def watcher(env):
        yield env.process(good(env))

    witness.process(watcher(witness))
    witness.run()
    # Failure vs success of the child changes nothing about the count.
    assert env.events_processed == witness.events_processed


def test_events_processed_exact_when_callback_raises():
    """The loop flushes its local counter on the way out of a raising
    run(), so the failing event itself is already counted."""
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("bad")

    env.process(bad(env))
    with pytest.raises(ValueError, match="bad"):
        env.run()
    counted = env.events_processed
    assert counted > 0
    # Nothing left to do; the count is stable.
    env.run()
    assert env.events_processed == counted


def test_events_processed_step_and_run_agree():
    """Mixing step() with run() keeps one shared, exact counter."""
    env = Environment()
    _three_sleepers(env)
    env.step()
    env.step()
    after_steps = env.events_processed
    assert after_steps == 2
    env.run()
    total = env.events_processed

    ref = Environment()
    _three_sleepers(ref)
    ref.run()
    assert total == ref.events_processed


# ---------------------------------------------------------------------------
# run(until=<number>) boundary semantics.
#
# The contract: the clock lands exactly on ``until`` whether the queue
# drains early or the next event lies beyond it, and events scheduled
# exactly at ``until`` are processed identically to a manual
# peek()/step() loop.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_run_until_lands_on_until_when_queue_drains_early(scheduler):
    env = Environment(scheduler=scheduler)

    def proc(env):
        yield env.timeout(3)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10.0
    assert len(env._queue) == 0


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_run_until_lands_on_until_when_next_event_is_beyond(scheduler):
    env = Environment(scheduler=scheduler)
    log = []

    def proc(env, d):
        yield env.timeout(d)
        log.append(env.now)

    env.process(proc(env, 3))
    env.process(proc(env, 20))
    env.run(until=10)
    assert env.now == 10.0
    assert log == [3.0]
    env.run()
    assert log == [3.0, 20.0]
    assert env.now == 20.0


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_run_until_processes_events_exactly_at_until(scheduler):
    """Events at t == until fire inside run(until), including zero-delay
    chains they spawn at that same timestamp."""
    env = Environment(scheduler=scheduler)
    log = []

    def proc(env):
        yield env.timeout(5.0)
        log.append(("wake", env.now))
        yield env.timeout(0.0)
        log.append(("chained", env.now))

    env.process(proc(env))
    env.run(until=5.0)
    assert log == [("wake", 5.0), ("chained", 5.0)]
    assert env.now == 5.0


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_run_until_matches_manual_step_loop(scheduler):
    """Differential: run(until=T) retires exactly the events a manual
    ``while peek() <= T: step()`` loop retires, in the same order."""
    STOP = 5.0

    def build():
        env = Environment(scheduler=scheduler)
        log = []

        def proc(env, i, d):
            yield env.timeout(d)
            log.append((i, env.now))

        for i, d in enumerate([1.0, 5.0, 5.0, 9.0]):
            env.process(proc(env, i, d))
        return env, log

    auto, auto_log = build()
    auto.run(until=STOP)

    manual, manual_log = build()
    while manual.peek() <= STOP:
        manual.step()

    assert auto_log == manual_log == [(0, 1.0), (1, 5.0), (2, 5.0)]
    assert auto.events_processed == manual.events_processed
    # The only divergence is by design: run() advances the clock to the
    # stop time, the manual loop leaves it at the last retired event.
    assert auto.now == STOP
    assert manual.now == 5.0
