"""Integration: several consumer/producer pairs on one coordinator.

The 8-GPU server hosts multiple AQUA pairs simultaneously; this checks
that pairings stay isolated (a consumer only lands on *its* producer),
that concurrent reclaims touch only the right tensors, and that the
shared coordinator's books balance across the whole server.
"""

import pytest

from repro.aqua import AquaLib, Coordinator
from repro.aqua.tensor import Location
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.sim import Environment


def make_pairs(n_pairs=3):
    env = Environment()
    server = Server(env, n_gpus=2 * n_pairs, topology="nvswitch")
    coord = Coordinator()
    pairs = []
    for i in range(n_pairs):
        consumer = AquaLib(server.gpus[i], server, coord)
        producer = AquaLib(server.gpus[n_pairs + i], server, coord)
        coord.pair(consumer.name, producer.name)
        producer.complete_offer(10 * GiB)
        pairs.append((consumer, producer))
    return env, server, coord, pairs


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)


def test_tensors_land_on_own_producer():
    env, server, coord, pairs = make_pairs()
    for consumer, producer in pairs:
        tensor = consumer.to_responsive_tensor(1 * GiB)
        assert tensor.device is producer.gpu


def test_reclaim_isolated_to_one_pair():
    env, server, coord, pairs = make_pairs()
    tensors = [c.to_responsive_tensor(2 * GiB) for c, _ in pairs]
    # Pair 0's producer reclaims.
    (c0, p0) = pairs[0]
    coord.request("POST", "/reclaim_request", {"producer": p0.name})
    for consumer, _ in pairs:
        run(env, consumer.respond())
    assert tensors[0].location is Location.DRAM
    # The other pairs were untouched.
    for tensor, (_, producer) in zip(tensors[1:], pairs[1:]):
        assert tensor.device is producer.gpu


def test_concurrent_fetches_use_disjoint_ports():
    """Each pair's NVSwitch ports are private: fetches fully overlap."""
    env, server, coord, pairs = make_pairs()
    tensors = [c.to_responsive_tensor(4 * GiB) for c, _ in pairs]

    single_env, single_server, single_coord, single_pairs = make_pairs(n_pairs=1)
    single_tensor = single_pairs[0][0].to_responsive_tensor(4 * GiB)
    run(single_env, single_tensor.fetch())
    one = single_env.now

    for tensor in tensors:
        env.process(tensor.fetch())
    env.run()
    assert env.now == pytest.approx(one, rel=0.01)


def test_coordinator_books_balance_across_pairs():
    env, server, coord, pairs = make_pairs()
    tensors = []
    for consumer, _ in pairs:
        tensors.append(consumer.to_responsive_tensor(1 * GiB))
        tensors.append(consumer.to_responsive_tensor(2 * GiB))
    stats = coord.request("GET", "/stats").body
    assert stats["allocations"] == 6
    assert stats["offloaded_bytes"] == 3 * (1 + 2) * GiB
    for tensor in tensors:
        tensor.free()
    stats = coord.request("GET", "/stats").body
    assert stats["allocations"] == 0
    for _, producer in pairs:
        assert coord.leases[producer.name].used == 0


def test_producer_of_one_pair_cannot_receive_other_consumers():
    env, server, coord, pairs = make_pairs(n_pairs=2)
    (c0, p0), (c1, p1) = pairs
    # Fill p1's lease entirely from c1.
    c1.to_responsive_tensor(10 * GiB)
    # c0 still allocates on p0 — never spills onto p1.
    tensor = c0.to_responsive_tensor(5 * GiB)
    assert tensor.device is p0.gpu
    # And once p0 is full, c0 falls back to DRAM, not to p1.
    overflow = c0.to_responsive_tensor(8 * GiB)
    assert overflow.location is Location.DRAM
