"""Tests for hardware specs and the link cost model (Figure 3a calibration)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    A100_80G,
    NVLINK3_P2P,
    PCIE_GEN4_X16,
    LinkSpec,
    effective_bandwidth,
    transfer_time,
)
from repro.hardware.specs import GB, MB


def test_a100_capacity():
    assert A100_80G.hbm_bytes == 80 * 1024**3
    assert A100_80G.effective_flops < A100_80G.fp16_flops


def test_nvlink_peak_bandwidth_matches_paper():
    """Figure 3a: the 2-A100 link saturates near 250 GB/s."""
    bw = NVLINK3_P2P.effective_bandwidth(1 * GB)
    assert bw > 0.9 * 250 * GB


def test_nvlink_bandwidth_at_2mb_matches_paper():
    """Figure 3a: NVLink reaches ~100 GB/s at 2 MB transfers."""
    bw = NVLINK3_P2P.effective_bandwidth(2 * MB)
    assert 80 * GB < bw < 130 * GB


def test_nvlink_small_transfers_are_pcie_slow():
    """Small NVLink copies are nearly as slow as PCIe (paper §2.3)."""
    nvlink_small = NVLINK3_P2P.effective_bandwidth(16 * 1024)
    pcie_large = PCIE_GEN4_X16.effective_bandwidth(64 * MB)
    assert nvlink_small < pcie_large


def test_nvlink_beats_pcie_for_large_transfers():
    ratio = NVLINK3_P2P.effective_bandwidth(256 * MB) / PCIE_GEN4_X16.effective_bandwidth(
        256 * MB
    )
    assert ratio > 5


def test_transfer_time_zero_bytes():
    assert NVLINK3_P2P.transfer_time(0) == 0.0


def test_transfer_time_negative_rejected():
    with pytest.raises(ValueError):
        NVLINK3_P2P.transfer_time(-1)


def test_effective_bandwidth_zero():
    assert NVLINK3_P2P.effective_bandwidth(0) == 0.0


def test_module_level_wrappers():
    assert transfer_time(PCIE_GEN4_X16, MB) == PCIE_GEN4_X16.transfer_time(MB)
    assert effective_bandwidth(PCIE_GEN4_X16, MB) == PCIE_GEN4_X16.effective_bandwidth(MB)


@given(nbytes=st.floats(min_value=1, max_value=1e12))
@settings(max_examples=100, deadline=None)
def test_effective_bandwidth_below_peak(nbytes):
    """Property: observed bandwidth never exceeds the link's peak."""
    assert NVLINK3_P2P.effective_bandwidth(nbytes) <= NVLINK3_P2P.peak_bandwidth


@given(
    a=st.floats(min_value=1, max_value=1e11),
    b=st.floats(min_value=1, max_value=1e11),
)
@settings(max_examples=100, deadline=None)
def test_effective_bandwidth_monotone_in_size(a, b):
    """Property: bigger transfers always see >= effective bandwidth."""
    small, large = sorted((a, b))
    assert NVLINK3_P2P.effective_bandwidth(large) >= NVLINK3_P2P.effective_bandwidth(
        small
    ) - 1e-9


@given(
    peak=st.floats(min_value=1e9, max_value=1e12),
    latency=st.floats(min_value=1e-7, max_value=1e-3),
    nbytes=st.floats(min_value=1, max_value=1e10),
)
@settings(max_examples=100, deadline=None)
def test_transfer_time_decomposes(peak, latency, nbytes):
    """Property: time = latency + payload/peak for any link."""
    spec = LinkSpec(name="x", peak_bandwidth=peak, latency=latency)
    assert spec.transfer_time(nbytes) == pytest.approx(latency + nbytes / peak)
