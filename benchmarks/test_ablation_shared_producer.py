"""Ablation: one producer per consumer vs a shared producer.

Design choice (§4): AQUA-PLACER deliberately refuses to map one
producer to multiple consumers, "because sharing a producer ... may
cause the NVLink bandwidth of the producer GPU to be shared between
consumers, reducing the benefits".  This ablation measures exactly
that on an NVSwitch server: two long-prompt consumers with dedicated
producers vs the same two consumers offloading to a single producer.
"""

from benchmarks._util import emit, run_once
from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.models import OPT_30B, SD_15, SD_XL
from repro.serving import BatchEngine, FlexGenEngine
from repro.sim import Environment
from repro.workloads import long_prompt_requests
from repro.workloads.arrivals import submit_all

DURATION = 60.0


def _run(shared_producer: bool) -> list[int]:
    env = Environment()
    server = Server(env, n_gpus=4, topology="nvswitch")
    coord = Coordinator()

    producers = []
    for i, model in enumerate((SD_15, SD_XL)):
        lib = AquaLib(server.gpus[2 + i], server, coord, informer=BatchInformer())
        engine = BatchEngine(server.gpus[2 + i], server, model, aqua_lib=lib)
        engine.start()
        producers.append(lib)

    consumers = []
    for i in range(2):
        lib = AquaLib(server.gpus[i], server, coord)
        engine = FlexGenEngine(
            server.gpus[i],
            server,
            OPT_30B,
            aqua_lib=lib,
            workspace_tokens=8000,
            name=f"flexgen-{i}",
        )
        producer = producers[0] if shared_producer else producers[i]
        coord.pair(lib.name, producer.name)
        engine.start()
        consumers.append(engine)

    env.run(until=1.0)
    for engine in consumers:
        submit_all(env, engine, long_prompt_requests(start=1.0))
    env.run(until=1.0 + DURATION)
    return [c.metrics.tokens_generated for c in consumers]


def test_ablation_shared_producer(benchmark):
    result = run_once(
        benchmark,
        lambda: {"dedicated": _run(False), "shared": _run(True)},
    )
    emit(
        format_table(
            ["variant", "consumer0_tokens", "consumer1_tokens"],
            [[k, *v] for k, v in result.items()],
            title="Ablation: dedicated vs shared producer (paper §4)",
        )
    )
    dedicated = sum(result["dedicated"])
    shared = sum(result["shared"])
    # Sharing one producer's NVLink port halves the offload bandwidth:
    # aggregate long-prompt throughput drops substantially.
    assert shared < 0.8 * dedicated
