"""Figure 18: stressing the NVSwitch with four bandwidth-hungry pairs.

Paper: four long-prompt consumers, each offloading to its own producer
across the NVSwitch, all achieve the same high throughput as the
direct-NVLink 2-GPU server — the switch does not become the bottleneck.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig18_nvswitch_stress(benchmark):
    result = run_once(benchmark, lambda: F.fig18_nvswitch_stress(duration=120.0))
    tokens = result["per_consumer_tokens"]
    ref = result["two_gpu_reference_tokens"]
    emit(
        format_table(
            ["consumer", "tokens"],
            [[f"pair{i}", t] for i, t in enumerate(tokens)] + [["2-GPU ref", ref]],
            title="Figure 18 (paper: all consumers match the 2-GPU server)",
        )
    )
    assert len(tokens) == 4
    for t in tokens:
        assert t > 0.8 * ref
    # And they match each other (no unfair switch contention).
    assert max(tokens) < 1.2 * min(tokens)
