"""Figure 12: AQUA TENSORS benefit vs offloaded tensor size.

Paper: with 200 adapters, a 10 GB cache and one distinct adapter per
prompt, the 320 MB adapters gain more from AQUA than the 160 MB ones —
same compute, double the I/O saved per miss.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig12_tensor_size(benchmark):
    result = run_once(
        benchmark, lambda: F.fig12_tensor_size(count=200, rate=10.0)
    )
    rows = []
    for size, data in result.items():
        rows.append(
            [
                size,
                data["baseline"]["summary"]["rct_mean"],
                data["aqua"]["summary"]["rct_mean"],
                data["rct_mean_saved"],
            ]
        )
    emit(
        format_table(
            ["adapter", "baseline_rct_s", "aqua_rct_s", "saved_s"],
            rows,
            title="Figure 12 (paper: larger I/O benefits more)",
        )
    )
    saved_160 = result["160MB"]["rct_mean_saved"]
    saved_320 = result["320MB"]["rct_mean_saved"]
    assert saved_160 > 0
    assert saved_320 > 1.5 * saved_160
