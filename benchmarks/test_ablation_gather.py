"""Ablation: AQUA's gather/scatter batching of scattered KV tensors.

Design choice (§5): vLLM scatters a prompt's KV across per-layer block
tensors, so a naive offload issues thousands of small NVLink copies —
and NVLink bandwidth collapses for small transfers (Figure 3a).  AQUA's
custom gather kernel coalesces them into one large staged copy.  This
ablation measures CFS context-switch time with the gather enabled vs
disabled, all else equal.
"""

from benchmarks._util import emit, run_once
from repro.experiments.harness import build_consumer_rig
from repro.experiments.report import format_table
from repro.models import KANDINSKY
from repro.workloads import code_summary_requests
from repro.workloads.arrivals import submit_all


def _run(gather: bool) -> dict:
    rig = build_consumer_rig(
        "cfs",
        "CodeLlama-34B",
        producer_model=KANDINSKY,
        use_aqua=True,
        consumer_kwargs={"slice_tokens": 5},
    )
    rig.consumer_lib.gather_enabled = gather
    rig.start().warm_up(1.0)
    requests = code_summary_requests(rate=5.0, count=40, seed=0, start=1.0)
    submit_all(rig.env, rig.consumer_engine, requests)
    rig.env.run(until=600)
    engine = rig.consumer_engine
    return {
        "switch_time": engine.context_switch_time,
        "slices": engine.slices_run,
        "completed": len(engine.metrics.completed),
    }


def test_ablation_gather_scatter(benchmark):
    result = run_once(
        benchmark, lambda: {"gathered": _run(True), "naive": _run(False)}
    )
    rows = [
        [label, d["switch_time"], d["slices"], d["completed"]]
        for label, d in result.items()
    ]
    emit(
        format_table(
            ["variant", "context_switch_s", "slices", "completed"],
            rows,
            title="Ablation: gather kernels vs naive per-block copies",
        )
    )
    gathered = result["gathered"]
    naive = result["naive"]
    # Without the gather kernels, context switching over NVLink loses
    # most of its advantage: switch time blows up by several x.
    assert naive["switch_time"] > 3 * gathered["switch_time"]
