"""Meta-benchmark: the simulator itself is fast enough to matter.

The reason this reproduction can regenerate every paper figure on every
run is raw kernel throughput: hundreds of thousands of events per
wall-clock second.  This benchmark tracks that number so a kernel
regression (or an accidental O(n^2) in an engine loop) shows up as a
slowdown here before it bloats the whole suite.
"""

import time

from benchmarks._util import emit, run_once
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.models import MISTRAL_7B
from repro.serving import Request, VLLMEngine
from repro.sim import Environment
from repro.workloads import sharegpt_requests
from repro.workloads.arrivals import submit_all


def _kernel_events_per_second(n_processes=200, hops=200) -> float:
    env = Environment()

    def worker(env, i):
        for step in range(hops):
            yield env.timeout(0.001 * ((i + step) % 7 + 1))

    for i in range(n_processes):
        env.process(worker(env, i))
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    return (n_processes * hops) / elapsed


def _engine_sim_seconds_per_wall_second() -> float:
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.start()
    submit_all(env, engine, sharegpt_requests(rate=5.0, count=200, seed=0))
    started = time.perf_counter()
    env.run(until=120)
    elapsed = time.perf_counter() - started
    return 120 / elapsed


def test_simulator_performance(benchmark):
    result = run_once(
        benchmark,
        lambda: {
            "kernel_events_per_s": _kernel_events_per_second(),
            "engine_speedup_vs_realtime": _engine_sim_seconds_per_wall_second(),
        },
    )
    emit(
        format_table(
            ["metric", "value"],
            [[k, f"{v:,.0f}"] for k, v in result.items()],
            title="Simulator throughput",
        )
    )
    # The kernel processes events fast...
    assert result["kernel_events_per_s"] > 50_000
    # ...and a loaded serving engine simulates much faster than realtime.
    assert result["engine_speedup_vs_realtime"] > 20
