"""Meta-benchmark: the simulator itself is fast enough to matter.

The reason this reproduction can regenerate every paper figure on every
run is raw kernel throughput: hundreds of thousands of events per
wall-clock second.  The scenarios themselves live in
:mod:`repro.benchmarks` (shared with the ``aqua-repro bench`` CLI and
its persistent ``BENCH_<n>.json`` artifacts — see
``docs/performance.md``); this test runs them under pytest-benchmark so
a kernel regression (or an accidental O(n^2) in an engine loop) shows
up here before it bloats the whole suite.
"""

from benchmarks._util import emit, run_once
from repro.benchmarks import run_bench, validate_bench
from repro.experiments.report import format_table


def test_simulator_performance(benchmark):
    doc = run_once(benchmark, lambda: run_bench(["kernel", "vllm_e2e"]))
    validate_bench(doc)
    kernel = doc["scenarios"]["kernel"]
    engine = doc["scenarios"]["vllm_e2e"]
    emit(
        format_table(
            ["metric", "value"],
            [
                ["kernel_events_per_s", f"{kernel['events_per_s']:,.0f}"],
                ["engine_speedup_vs_realtime", f"{engine['sim_s_per_wall_s']:,.0f}"],
                ["peak_rss_mib", f"{doc['peak_rss_bytes'] / 2**20:,.0f}"],
            ],
            title="Simulator throughput",
        )
    )
    # The kernel processes events fast...
    assert kernel["events_per_s"] > 50_000
    # ...and a loaded serving engine simulates much faster than realtime.
    assert engine["sim_s_per_wall_s"] > 20
