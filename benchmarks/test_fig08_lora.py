"""Figure 8: serving Mistral-7B with 30 x 320 MB LoRA adapters.

Paper: AQUA improves RCTs by up to 1.8x because adapters load over
NVLink from the producer GPU instead of pageable host memory over PCIe;
AQUA-0/AQUA-1 (SD / SD-XL producers) and the LLM-producer variant (8b)
all behave alike.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig08_lora(benchmark):
    result = run_once(benchmark, lambda: F.fig08_lora(rate=8.0, count=100))
    rows = []
    for label, data in result.items():
        s = data["summary"]
        rows.append(
            [label, s["rct_p50"], s["rct_mean"], s["rct_p95"], str(data["cache"])]
        )
    emit(
        format_table(
            ["system", "rct_p50_s", "rct_mean_s", "rct_p95_s", "cache"],
            rows,
            title="Figure 8 (paper: AQUA up to 1.8x lower RCT)",
        )
    )
    base = result["baseline"]["summary"]["rct_mean"]
    for label in ("aqua-0", "aqua-1", "aqua-llm"):
        improvement = base / result[label]["summary"]["rct_mean"]
        assert improvement > 1.3, f"{label} improvement {improvement:.2f}x too small"
        assert improvement < 4.0, f"{label} improvement {improvement:.2f}x too large"
