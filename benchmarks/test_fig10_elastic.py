"""Figure 10: elastic AQUA TENSORS under a dynamic producer workload.

Paper: the idle Llama-2-13B producer donates (retaining ~5 GB), the
long-prompt consumer runs fast over NVLink; a 5 req/s burst triggers a
reclaim that dents consumer throughput; after the burst the memory is
re-donated and throughput recovers — ~6x overall vs DRAM.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig10_elastic(benchmark):
    result = run_once(
        benchmark,
        lambda: F.fig10_elastic(phase1_start=30, phase2_start=90, end=200),
    )
    samples = result["free_memory_gib"]
    step = max(1, len(samples) // 24)
    emit(
        format_table(
            ["t_s", "engine_free_GiB", "consumer_tok/s"],
            [
                [f"{t:.0f}", v, result["consumer_tokens_per_s"][i][1]]
                for i, (t, v) in enumerate(samples)
            ][::step],
            title="Figure 10: donation -> reclaim -> re-donation timeline",
        )
    )
    free = [v for _, v in samples]
    # Donated state is much smaller than the reclaimed state.
    assert max(free) > 2 * min(free)

    # Consumer throughput: fast before the burst, dented during reclaim,
    # recovered after.
    tokens = dict(result["consumer_tokens_per_s"])
    phases = result["phases"]
    before = [v for t, v in tokens.items() if phases["phase1"] + 20 < t < phases["phase2"]]
    during = [v for t, v in tokens.items() if phases["phase2"] + 5 < t < phases["phase2"] + 40]
    after = [v for t, v in tokens.items() if t > phases["end"] - 20]
    assert sum(before) / len(before) > 1.5 * sum(during) / len(during)
    assert sum(after) / len(after) > 1.3 * sum(during) / len(during)
