"""Figure 2: throughput & free memory vs batch size per modality.

Paper: audio (2a) and image (2b) generators plateau in throughput with
tens of GB of free HBM; the LLM (2c) consumes nearly all memory at its
peak throughput — the producer/consumer split AQUA exploits.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig02_contention(benchmark):
    result = run_once(benchmark, F.fig02_contention)
    for model, rows in result.items():
        emit(
            format_table(
                ["batch", "throughput/s", "free_GiB"],
                [[r["batch"], r["throughput"], r["free_gib"]] for r in rows],
                title=f"Figure 2: {model}",
            )
        )
    for name in ("AudioGen", "StableDiffusion-1.5"):
        rows = result[name]
        assert rows[-1]["free_gib"] > 20, f"{name} should plateau with free HBM"
        mid = rows[len(rows) // 2]
        assert rows[-1]["throughput"] < 1.2 * mid["throughput"]
    llm = result["Llama-2-13B"]
    assert llm[-1]["free_gib"] < 10, "the LLM should exhaust HBM at peak"
    assert llm[-1]["throughput"] > llm[0]["throughput"]
