"""Figures 15-17: the CFS workload next to different memory producers.

Paper: the responsiveness gains of Figure 9 are insensitive to who the
producer is — an elastic Mistral LLM producer (Fig. 15), a
StableDiffusion producer (Fig. 16), or producers across an 8-GPU
NVSwitch server (Fig. 17) all give similar TTFT/RCT improvements.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def _check_and_report(result, title):
    systems = result[2.0]
    rows = []
    for label, data in systems.items():
        s = data["summary"]
        rows.append([label, s["ttft_mean"], s["ttft_p95"], s["rct_mean"]])
    emit(
        format_table(
            ["system", "ttft_mean_s", "ttft_p95_s", "rct_mean_s"],
            rows,
            title=title,
        )
    )
    vllm = systems["vllm"]["summary"]
    aqua = systems["aqua"]["summary"]
    cfs = systems["cfs-dram"]["summary"]
    assert aqua["ttft_p95"] < vllm["ttft_p95"] / 2
    assert aqua["rct_mean"] < cfs["rct_mean"]


def test_fig15_llm_producer(benchmark):
    result = run_once(
        benchmark, lambda: F.fig15_llm_producer(rates=(2.0,), count=50)
    )
    _check_and_report(result, "Figure 15: CFS + Mistral LLM producer")


def test_fig16_sd_producer(benchmark):
    result = run_once(
        benchmark, lambda: F.fig16_sd_producer(rates=(2.0,), count=50)
    )
    _check_and_report(result, "Figure 16: CFS + StableDiffusion producer")


def test_fig17_nvswitch_cfs(benchmark):
    result = run_once(
        benchmark, lambda: F.fig17_nvswitch_cfs(rates=(2.0,), count=50)
    )
    _check_and_report(result, "Figure 17: CFS on the 8-GPU NVSwitch server")
