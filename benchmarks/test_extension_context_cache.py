"""Extension: caching chat contexts in donated GPU memory between turns.

The §8 chatbot resends the whole conversation each turn, so turn ``t``
re-prefills everything turns ``1..t-1`` already computed.  Keeping each
finished conversation's KV parked as an AQUA TENSOR (in the producer's
donated HBM) and restoring it over NVLink turns that quadratic prefill
cost into a linear memory read — an extension the AQUA abstractions
make nearly free to build.
"""

from benchmarks._util import emit, run_once
from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.report import format_table, summarize_requests
from repro.hardware import Server
from repro.models import CODELLAMA_34B, KANDINSKY
from repro.serving import BatchEngine, CFSEngine, ChatContextCache
from repro.sim import Environment
from repro.workloads import ChatbotWorkload


def _run(with_cache: bool) -> dict:
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
    producer = BatchEngine(server.gpus[1], server, KANDINSKY, aqua_lib=producer_lib)
    producer.start()
    coord.pair(lib.name, producer_lib.name)
    cache = ChatContextCache(lib, CODELLAMA_34B) if with_cache else None
    engine = CFSEngine(
        server.gpus[0],
        server,
        CODELLAMA_34B,
        use_aqua=True,
        aqua_lib=lib,
        slice_tokens=5,
        context_cache=cache,
    )
    engine.start()
    env.run(until=1.0)
    workload = ChatbotWorkload(n_users=25, turns=4, seed=0)
    users = workload.attach(env, engine)
    deadline = 2400.0
    while env.now < deadline and not all(u.processed for u in users):
        env.run(until=env.now + 5.0)
    summary = summarize_requests(engine.metrics.completed, "chat")
    summary["finish"] = env.now
    summary["cache_hits"] = cache.hits if cache else 0
    summary["tokens_restored"] = cache.tokens_restored if cache else 0
    return summary


def test_extension_chat_context_cache(benchmark):
    result = run_once(
        benchmark, lambda: {"aqua": _run(False), "aqua+ctx-cache": _run(True)}
    )
    rows = []
    for label, s in result.items():
        rows.append(
            [
                label,
                s["completed"],
                s["ttft_mean"],
                s["rct_mean"],
                s["finish"],
                s["cache_hits"],
            ]
        )
    emit(
        format_table(
            ["system", "turns", "ttft_mean_s", "rct_mean_s", "finish_s", "ctx_hits"],
            rows,
            title="25-user x 4-turn chat: AQUA CFS +/- chat-context caching",
        )
    )
    plain = result["aqua"]
    cached = result["aqua+ctx-cache"]
    assert cached["completed"] == plain["completed"] == 100
    # Every returning turn hits the cache (75 of 100 turns).
    assert cached["cache_hits"] >= 70
    # Skipping history re-prefill lowers completion times and total time.
    assert cached["rct_mean"] < 0.9 * plain["rct_mean"]
    assert cached["finish"] < plain["finish"]
