"""Ablation: how often should engines talk to the AQUA control plane?

The paper keeps AQUA-LIB's overhead low by contacting the coordinator
"only once per a configurable number of inference iterations" (§3).
The cost of checking rarely is *reaction latency*: a consumer only
notices a new lease (or a reclaim) at its next ``respond()`` boundary.
This ablation delays a producer's donation and varies the consumer's
``respond_every``: checking every few tokens captures the fast path
almost immediately, checking every few hundred leaves tokens on the
table — while the per-check cost is negligible at every setting.
"""

from benchmarks._util import emit, run_once
from repro.aqua import AquaLib, Coordinator
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.models import OPT_30B
from repro.serving import FlexGenEngine
from repro.sim import Environment
from repro.workloads import long_prompt_requests
from repro.workloads.arrivals import submit_all

DONATION_AT = 10.0
END = 60.0


def _run(respond_every: int) -> int:
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    producer_lib = AquaLib(server.gpus[1], server, coord)
    coord.pair(lib.name, producer_lib.name)
    engine = FlexGenEngine(
        server.gpus[0],
        server,
        OPT_30B,
        aqua_lib=lib,
        workspace_tokens=8000,
        respond_every=respond_every,
    )
    engine.start()
    submit_all(env, engine, long_prompt_requests())

    def donate_later(env):
        yield env.timeout(DONATION_AT)
        producer_lib.complete_offer(40 * GiB)

    env.process(donate_later(env))
    env.run(until=END)
    return engine.metrics.tokens_generated


def test_ablation_control_plane_frequency(benchmark):
    frequencies = (4, 16, 64, 512)
    results = run_once(benchmark, lambda: {f: _run(f) for f in frequencies})
    emit(
        format_table(
            ["respond_every (tokens)", "tokens_in_60s"],
            [[f, tokens] for f, tokens in results.items()],
            title="Reaction to a late donation vs control-plane frequency",
        )
    )
    # Frequent checks catch the donation early and win...
    assert results[4] > results[512]
    # ...but the paper's point holds: a moderate interval loses little,
    # because the check itself is nearly free.
    assert results[16] > 0.9 * results[4]
