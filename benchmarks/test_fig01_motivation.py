"""Figure 1: responsiveness (TTFT) vs throughput (RCT) across schedulers.

Paper: vLLM's batch scheduler starves late prompts (TTFT spikes after
~20 requests at 5 req/s); CFS fixes TTFT but over DRAM/PCIe costs ~50%
RCT; AQUA keeps the TTFT win with RCT close to vLLM.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig01_motivation(benchmark):
    result = run_once(benchmark, lambda: F.fig01_motivation(rate=5.0, count=60))
    rows = []
    for label, data in result.items():
        s = data["summary"]
        rows.append(
            [label, s["ttft_mean"], s["ttft_p95"], s["rct_mean"], s["rct_p95"]]
        )
    emit(
        format_table(
            ["system", "ttft_mean_s", "ttft_p95_s", "rct_mean_s", "rct_p95_s"],
            rows,
            title="Figure 1 @ 5 req/s (paper: CFS ~4x TTFT; AQUA RCT ~ vLLM)",
        )
    )
    vllm = result["vllm"]["summary"]
    cfs = result["cfs-dram"]["summary"]
    aqua = result["aqua"]["summary"]
    # Fair scheduling tames the starvation tail...
    assert cfs["ttft_p95"] < vllm["ttft_p95"]
    assert aqua["ttft_p95"] < vllm["ttft_p95"]
    # ...DRAM-paged CFS pays for it in completion time...
    assert cfs["rct_mean"] > 1.3 * vllm["rct_mean"]
    # ...and AQUA recovers most of that loss.
    assert aqua["rct_mean"] < cfs["rct_mean"]
