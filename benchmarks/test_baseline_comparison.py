"""Extension: offloading-mechanism shoot-out on the long-prompt workload.

Compares every offload mechanism discussed by the paper (§9) on the
same OPT-30B 8000-token job: DeepSpeed-style synchronous offload, UVM
page-fault migration, FlexGen's overlapped streaming — each to DRAM and
to a producer GPU — and AQUA proper.  The ordering the paper implies:

    UVM/PCIe < DeepSpeed/PCIe < FlexGen/PCIe << UVM/NVLink < AQUA
"""

from benchmarks._util import emit, run_once
from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.models import OPT_30B, SD_15
from repro.serving import BatchEngine, DeepSpeedEngine, FlexGenEngine, UVMEngine
from repro.sim import Environment
from repro.workloads import long_prompt_requests
from repro.workloads.arrivals import submit_all

DURATION = 60.0


def _tokens(cls, paired: bool) -> int:
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    engine = cls(server.gpus[0], server, OPT_30B, aqua_lib=lib, workspace_tokens=8000)
    if paired:
        producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        producer = BatchEngine(server.gpus[1], server, SD_15, aqua_lib=producer_lib)
        producer.start()
        coord.pair(lib.name, producer_lib.name)
    engine.start()
    env.run(until=1.0)
    submit_all(env, engine, long_prompt_requests(start=1.0))
    env.run(until=1.0 + DURATION)
    return engine.metrics.tokens_generated


def test_offload_mechanism_comparison(benchmark):
    result = run_once(
        benchmark,
        lambda: {
            "uvm/pcie": _tokens(UVMEngine, False),
            "deepspeed/pcie": _tokens(DeepSpeedEngine, False),
            "flexgen/pcie": _tokens(FlexGenEngine, False),
            "uvm/nvlink": _tokens(UVMEngine, True),
            "deepspeed+aqua": _tokens(DeepSpeedEngine, True),
            "aqua (flexgen+aqua)": _tokens(FlexGenEngine, True),
        },
    )
    base = result["flexgen/pcie"]
    emit(
        format_table(
            ["mechanism", "tokens", "vs flexgen/pcie"],
            [[k, v, v / base] for k, v in result.items()],
            title=f"Offload mechanisms, OPT-30B 8000-token prompt, {DURATION:.0f}s",
        )
    )
    # The ordering the paper's arguments imply:
    assert result["uvm/pcie"] <= result["deepspeed/pcie"] <= result["flexgen/pcie"]
    assert result["flexgen/pcie"] < result["uvm/nvlink"]
    assert result["uvm/nvlink"] < result["aqua (flexgen+aqua)"]
    # And AQUA helps DeepSpeed too (§9).
    assert result["deepspeed+aqua"] > 3 * result["deepspeed/pcie"]
