"""Figure 7: long-prompt inference throughput (OPT-30B, 8000 tokens).

Paper: AQUA generates ~6x more tokens than FlexGen-to-DRAM in the same
duration, whether the producer is StableDiffusion, AudioGen (balanced
split) or another LLM (LLM-heavy split).
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig07_longprompt(benchmark):
    result = run_once(benchmark, lambda: F.fig07_longprompt(duration=120.0))
    emit(
        format_table(
            ["system", "tokens", "speedup"],
            [[k, v["tokens"], v["speedup"]] for k, v in result.items()],
            title="Figure 7: tokens in 120 s (paper: AQUA ~6x FlexGen)",
        )
    )
    for label in ("aqua+sd", "aqua+audiogen", "aqua+llama"):
        assert result[label]["speedup"] > 3, f"{label} lost the NVLink advantage"
    assert result["flexgen-dram"]["tokens"] > 0
