"""Figure 14 / §A.1: AQUA-PLACER convergence time, 16-128 GPUs.

Paper: the Gurobi encoding converges in <1 s for 50/50 LLM
producer/consumer clusters and up to ~45 s for mixed-modality clusters
(more feasible matchings to search).  This reproduction solves the same
MILP with HiGHS under a 60 s budget.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig14_placer_convergence(benchmark):
    result = run_once(
        benchmark, lambda: F.fig14_placer_convergence(gpu_counts=(16, 32, 64, 128))
    )
    emit(
        format_table(
            ["gpus", "mixed_s", "llm5050_s", "mixed_pairs", "llm5050_pairs"],
            [
                [
                    r["gpus"],
                    r["mixed_seconds"],
                    r["llm5050_seconds"],
                    r["mixed_pairs"],
                    r["llm5050_pairs"],
                ]
                for r in result["rows"]
            ],
            title="Figure 14 (paper: mixed <45 s, 50/50 <1 s)",
        )
    )
    for row in result["rows"]:
        # 50/50 LLM instances are near-instant, like the paper's <1 s.
        assert row["llm5050_seconds"] < 2.0
        # Mixed-modality is the harder search.
        assert row["mixed_seconds"] > row["llm5050_seconds"]
        # Every consumer gets a producer in the 50/50 split.
        assert row["llm5050_pairs"] == row["gpus"] // 2
    # The time budget bounds even the largest instance.
    assert result["rows"][-1]["mixed_seconds"] < 90.0
