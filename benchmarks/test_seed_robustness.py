"""Extension: the headline results are stable across workload seeds.

Re-runs the two headline comparisons (long-prompt speedup, LoRA RCT
improvement) over several seeds and checks that the mean effect matches
the paper's shape with a small coefficient of variation — i.e., the
reproduction's conclusions do not hinge on one lucky trace.
"""

from benchmarks._util import emit, run_once
from repro.experiments.harness import DEFAULT_LORA_CACHE_BYTES, build_consumer_rig, drain
from repro.experiments.report import format_table
from repro.experiments.stats import coefficient_of_variation, mean_std, replicate, summarize_replicates
from repro.models import SD_15, synthesize_adapters
from repro.workloads import long_prompt_requests, lora_requests
from repro.workloads.arrivals import submit_all

SEEDS = (0, 1, 2, 3)


def _lora_gain(seed: int) -> dict:
    def mean_rct(use_aqua: bool) -> float:
        rig = build_consumer_rig(
            "vllm",
            "Mistral-7B",
            producer_model=SD_15 if use_aqua else None,
            use_aqua=use_aqua,
            lora_capacity_bytes=DEFAULT_LORA_CACHE_BYTES,
        ).start()
        adapters = synthesize_adapters(30, 320 * 10**6)
        if use_aqua:
            rig.warm_up(1.0)
            for adapter in adapters:
                rig.lora_cache.register(adapter)
        requests = lora_requests(adapters, rate=8.0, count=80, seed=seed, start=1.0)
        submit_all(rig.env, rig.consumer_engine, requests)
        drain(rig.env, requests, timeout=600)
        rcts = [r.rct for r in requests if r.rct is not None]
        return sum(rcts) / len(rcts)

    return {"gain": mean_rct(False) / mean_rct(True)}


def _longprompt_speedup(seed: int) -> dict:
    # The long-prompt job is deterministic, but the producer's Parti
    # traffic (and hence interference) varies with the seed.
    from repro.workloads import producer_requests

    def tokens(use_aqua: bool) -> int:
        rig = build_consumer_rig(
            "flexgen",
            "OPT-30B",
            producer_model=SD_15 if use_aqua else None,
            use_aqua=use_aqua,
        ).start()
        if use_aqua:
            rig.warm_up(1.0)
            submit_all(
                rig.env,
                rig.producer_engine,
                producer_requests(rate=2.0, count=1000, seed=seed, start=1.0),
            )
        submit_all(rig.env, rig.consumer_engine, long_prompt_requests(start=1.0))
        rig.env.run(until=31.0)
        return rig.consumer_engine.metrics.tokens_generated

    return {"speedup": tokens(True) / tokens(False)}


def test_headline_results_seed_robust(benchmark):
    def run():
        lora = summarize_replicates(replicate(_lora_gain, SEEDS), ["gain"])["gain"]
        speedup = summarize_replicates(
            replicate(_longprompt_speedup, SEEDS), ["speedup"]
        )["speedup"]
        return {"lora_gain": lora, "longprompt_speedup": speedup}

    result = run_once(benchmark, run)
    emit(
        format_table(
            ["metric", "mean", "std", "cv"],
            [
                [name, s.mean, s.std, coefficient_of_variation(s)]
                for name, s in result.items()
            ],
            title=f"Headline effects across seeds {SEEDS}",
        )
    )
    assert result["lora_gain"].mean > 1.3
    assert result["longprompt_speedup"].mean > 4
    for spread in result.values():
        assert coefficient_of_variation(spread) < 0.25
