"""Tables 1-3: the evaluation's workload inventory, executed end-to-end.

Beyond listing the (model, workload, engine) triples, this benchmark
actually runs a short slice of every row: each consumer workload on its
engine and each producer workload on its engine, verifying the whole
inventory is servable by the reproduction.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.harness import DEFAULT_LORA_CACHE_BYTES, build_consumer_rig, drain
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.models import AUDIOGEN, KANDINSKY, MUSICGEN, SD_15, SD_XL, synthesize_adapters
from repro.serving import BatchEngine
from repro.sim import Environment
from repro.workloads import (
    code_summary_requests,
    long_prompt_requests,
    lora_requests,
    producer_requests,
    sharegpt_requests,
)
from repro.workloads.arrivals import submit_all


def test_tables_inventory(benchmark):
    tables = run_once(
        benchmark,
        lambda: {
            "table1": F.table1_deficit_jobs(),
            "table2": F.table2_excess_llm_jobs(),
            "table3": F.table3_producer_jobs(),
        },
    )
    for name, rows in tables.items():
        emit(
            format_table(
                ["model", "workload", "engine"],
                [[r["model"], r["workload"], r["engine"]] for r in rows],
                title=name,
            )
        )
    assert len(tables["table1"]) == 3
    assert len(tables["table2"]) == 2
    assert len(tables["table3"]) == 2


def test_table1_deficit_jobs_run(benchmark):
    run_once(benchmark, _run_table1)


def _run_table1():
    # OPT-30B long prompts on FlexGen.
    rig = build_consumer_rig("flexgen", "OPT-30B", producer_model=SD_15).start()
    rig.warm_up(1.0)
    submit_all(rig.env, rig.consumer_engine, long_prompt_requests())
    rig.env.run(until=10)
    assert rig.consumer_engine.metrics.tokens_generated > 0

    # Mistral-7B + LoRA adapters on vLLM.
    rig = build_consumer_rig(
        "vllm",
        "Mistral-7B",
        producer_model=SD_15,
        lora_capacity_bytes=DEFAULT_LORA_CACHE_BYTES,
    ).start()
    rig.warm_up(1.0)
    adapters = synthesize_adapters(30, 320 * 10**6)
    reqs = lora_requests(adapters, rate=5, count=10, seed=0, start=1.0)
    submit_all(rig.env, rig.consumer_engine, reqs)
    drain(rig.env, reqs, timeout=120)
    assert all(r.done for r in reqs)

    # CodeLlama-34B code summaries on vLLM + CFS.
    rig = build_consumer_rig(
        "cfs", "CodeLlama-34B", producer_model=KANDINSKY
    ).start()
    rig.warm_up(1.0)
    reqs = code_summary_requests(rate=2, count=10, seed=0, start=1.0)
    submit_all(rig.env, rig.consumer_engine, reqs)
    drain(rig.env, reqs, timeout=300)
    assert all(r.done for r in reqs)


def test_table2_excess_llm_jobs_run(benchmark):
    run_once(benchmark, _run_table2)


def _run_table2():
    for model in ("Mistral-7B", "Llama-2-13B"):
        rig = build_consumer_rig("vllm", model, use_aqua=False).start()
        reqs = sharegpt_requests(rate=2, count=10, seed=0)
        submit_all(rig.env, rig.consumer_engine, reqs)
        drain(rig.env, reqs, timeout=300)
        assert all(r.done for r in reqs), model


def test_table3_producer_jobs_run(benchmark):
    run_once(benchmark, _run_table3)


def _run_table3():
    env = Environment()
    server = Server(env, n_gpus=8, topology="nvswitch")
    engines = []
    for i, model in enumerate((SD_15, SD_XL, KANDINSKY, MUSICGEN, AUDIOGEN)):
        engine = BatchEngine(server.gpus[i], server, model, name=f"prod-{model.name}")
        engine.start()
        reqs = producer_requests(rate=1.0, count=5, seed=i)
        submit_all(env, engine, reqs)
        engines.append((engine, reqs))
    env.run(until=120)
    for engine, reqs in engines:
        assert all(r.done for r in reqs), engine.name
