"""Extension of §9: Orca-style reservation vs vLLM's paged attention.

Orca batches at iteration granularity but reserves each sequence's KV
for its maximum length; vLLM pages it.  On the same burst the paged
engine admits several times more concurrent sequences, which is the
concurrency AQUA's fair scheduler then time-shares.
"""

from benchmarks._util import emit, run_once
from repro.experiments.report import format_table, summarize_requests
from repro.hardware import Server
from repro.models import CODELLAMA_34B
from repro.serving import OrcaEngine, Request, VLLMEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def _run(cls) -> dict:
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = cls(server.gpus[0], server, CODELLAMA_34B)
    engine.start()
    requests = [
        Request(arrival_time=0.2 * i, prompt_tokens=700, max_new_tokens=2000)
        for i in range(30)
    ]
    submit_all(env, engine, requests)
    peak = [0]

    def watch(env):
        while True:
            peak[0] = max(peak[0], len(engine.running))
            yield env.timeout(0.25)

    env.process(watch(env))
    env.run(until=1500)
    summary = summarize_requests(requests, cls.__name__)
    summary["peak_concurrency"] = peak[0]
    summary["finish"] = max(
        (r.finish_time for r in requests if r.finish_time), default=float("nan")
    )
    return summary


def test_orca_vs_vllm(benchmark):
    result = run_once(
        benchmark, lambda: {"orca": _run(OrcaEngine), "vllm": _run(VLLMEngine)}
    )
    rows = [
        [
            label,
            s["peak_concurrency"],
            s["ttft_p95"],
            s["rct_mean"],
            s["finish"],
        ]
        for label, s in result.items()
    ]
    emit(
        format_table(
            ["engine", "peak_batch", "ttft_p95_s", "rct_mean_s", "finish_s"],
            rows,
            title="Orca-style max-length reservation vs vLLM paged attention",
        )
    )
    orca, vllm = result["orca"], result["vllm"]
    assert vllm["peak_concurrency"] > 1.5 * orca["peak_concurrency"]
    assert vllm["finish"] < orca["finish"]
    assert vllm["ttft_p95"] < orca["ttft_p95"]
