"""§A.2: a long LoRA run — sustained benefit over time.

Paper: Mistral with the 320 MB adapter at 2 req/s for one hour; AQUA
improves p50 RCT by 2x and p95 by 1.7x.  This reproduction runs a
scaled 10-minute (simulated) slice with the same arrival process.
"""

from benchmarks._util import emit, run_once
from repro.experiments.harness import DEFAULT_LORA_CACHE_BYTES, build_consumer_rig, drain
from repro.experiments.report import format_table
from repro.models import SD_15, synthesize_adapters
from repro.serving.metrics import percentile
from repro.workloads import lora_requests
from repro.workloads.arrivals import submit_all


def _run(use_aqua: bool, count: int) -> list[float]:
    rig = build_consumer_rig(
        "vllm",
        "Mistral-7B",
        producer_model=SD_15 if use_aqua else None,
        use_aqua=use_aqua,
        lora_capacity_bytes=DEFAULT_LORA_CACHE_BYTES,
    ).start()
    adapters = synthesize_adapters(30, 320 * 10**6)
    if use_aqua:
        rig.warm_up(1.0)
        for adapter in adapters:
            rig.lora_cache.register(adapter)
    requests = lora_requests(adapters, rate=2.0, count=count, seed=7, start=1.0)
    submit_all(rig.env, rig.consumer_engine, requests)
    drain(rig.env, requests, timeout=3600, step=5.0)
    return sorted(r.rct for r in requests if r.rct is not None)


def test_a2_long_lora_run(benchmark):
    count = 1200  # 10 simulated minutes at 2 req/s
    result = run_once(
        benchmark, lambda: {"baseline": _run(False, count), "aqua": _run(True, count)}
    )
    base, aqua = result["baseline"], result["aqua"]
    rows = [
        ["baseline", len(base), percentile(base, 50), percentile(base, 95)],
        ["aqua", len(aqua), percentile(aqua, 50), percentile(aqua, 95)],
    ]
    emit(
        format_table(
            ["system", "completed", "rct_p50_s", "rct_p95_s"],
            rows,
            title="§A.2 sustained LoRA load (paper: p50 2x, p95 1.7x)",
        )
    )
    assert len(base) == count and len(aqua) == count
    p50_gain = percentile(base, 50) / percentile(aqua, 50)
    p95_gain = percentile(base, 95) / percentile(aqua, 95)
    # Shape check: sustained improvement at both percentiles.  The
    # paper reports 2x / 1.7x; this simulation's baseline loader is
    # more charitable than vLLM's real adapter path (no Python-side
    # deserialization stalls), so the margin is smaller — recorded in
    # EXPERIMENTS.md.
    assert p50_gain > 1.1
    assert p95_gain > 1.1
