"""Ablation: the exact MILP placer vs the greedy heuristic.

Design choice (§4): AQUA-PLACER solves an exact optimization so that
memory supply/demand balances per server and every consumer gets a
dedicated producer.  The greedy baseline pairs extremes first; this
ablation compares solution quality (objective, matched consumers) and
solve time across random instances.
"""

import numpy as np

from benchmarks._util import emit, run_once
from repro.aqua import AquaPlacer, ModelInstance
from repro.experiments.report import format_table
from repro.hardware.specs import GiB


def _instances(n_gpus: int, seed: int) -> list[ModelInstance]:
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n_gpus):
        if i % 2 == 0:
            out.append(
                ModelInstance(f"p{i}", "producer", int(rng.integers(15, 55)) * GiB)
            )
        else:
            out.append(
                ModelInstance(f"c{i}", "consumer", -int(rng.integers(10, 45)) * GiB)
            )
    return out


def test_ablation_placer_solvers(benchmark):
    def run():
        rows = []
        for n_gpus, seed in ((16, 0), (32, 1), (48, 2)):
            instances = _instances(n_gpus, seed)
            milp = AquaPlacer(n_servers=n_gpus // 2, gpus_per_server=2).place(instances)
            greedy = AquaPlacer(
                n_servers=n_gpus // 2, gpus_per_server=2, solver="greedy"
            ).place(instances)
            rows.append(
                {
                    "gpus": n_gpus,
                    "milp_obj": milp.objective,
                    "greedy_obj": greedy.objective,
                    "milp_pairs": len(milp.pairs),
                    "greedy_pairs": len(greedy.pairs),
                    "milp_s": milp.solve_seconds,
                    "greedy_s": greedy.solve_seconds,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["gpus", "milp_obj", "greedy_obj", "milp_pairs", "greedy_pairs", "milp_s", "greedy_s"],
            [
                [
                    r["gpus"],
                    r["milp_obj"],
                    r["greedy_obj"],
                    r["milp_pairs"],
                    r["greedy_pairs"],
                    r["milp_s"],
                    r["greedy_s"],
                ]
                for r in rows
            ],
            title="Ablation: exact MILP vs greedy placement",
        )
    )
    for r in rows:
        # The exact solver never produces a worse objective...
        assert r["milp_obj"] <= r["greedy_obj"] + 1e-6
        # ...and both match every consumer on these balanced instances.
        assert r["milp_pairs"] == r["gpus"] // 2
        assert r["greedy_pairs"] == r["gpus"] // 2
        # The heuristic is (much) faster, which is its only virtue here.
        assert r["greedy_s"] < r["milp_s"] * 2
