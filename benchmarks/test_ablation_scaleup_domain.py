"""Ablation: why AQUA offloads only within the scale-up domain.

AQUA deliberately restricts offloading to GPUs on the *same* server's
NVLink network.  This ablation quantifies the alternative: offloading a
long-prompt context to a GPU on a *different* server over a 200 Gb/s
RDMA fabric.  Cross-server bandwidth is PCIe-class, so the remote-GPU
path lands at DRAM-offload speed — an order of magnitude behind the
intra-server NVLink path the paper builds on.
"""

from benchmarks._util import emit, run_once
from repro.experiments.report import format_table
from repro.hardware import Cluster
from repro.hardware.cluster import RDMA_200G
from repro.models import OPT_30B
from repro.sim import Environment


def _context_read_time(duration_label: str) -> dict:
    """Time to stream an 8000-token OPT-30B context over each path."""
    env = Environment()
    cluster = Cluster(env, n_servers=2, gpus_per_server=2, rdma_link=RDMA_200G)
    server = cluster.servers[0]
    local_gpu = server.gpus[0]
    neighbour_gpu = server.gpus[1]
    remote_gpu = cluster.servers[1].gpus[0]
    nbytes = OPT_30B.kv_bytes(8000)

    return {
        "nvlink (same server)": server.transfer_time(neighbour_gpu, local_gpu, nbytes),
        "host DRAM (PCIe)": server.transfer_time(server.dram, local_gpu, nbytes),
        "remote GPU (RDMA)": server.transfer_time(remote_gpu, local_gpu, nbytes),
    }


def test_ablation_scaleup_domain(benchmark):
    times = run_once(benchmark, lambda: _context_read_time("8000-token context"))
    emit(
        format_table(
            ["offload target", "context read (s)", "vs NVLink"],
            [
                [label, t, t / times["nvlink (same server)"]]
                for label, t in times.items()
            ],
            title="Reading an 11 GB OPT-30B context from each offload target",
        )
    )
    nvlink = times["nvlink (same server)"]
    dram = times["host DRAM (PCIe)"]
    rdma = times["remote GPU (RDMA)"]
    # NVLink is an order of magnitude ahead of both alternatives...
    assert dram / nvlink > 5
    assert rdma / nvlink > 5
    # ...and the remote-GPU path is no better than local DRAM (it still
    # funnels through PCIe plus the NIC), which is the design argument.
    assert rdma >= 0.95 * dram
