"""Extension: how AQUA's advantage scales with interconnect generation.

The paper motivates AQUA with the PCIe/NVLink gap across generations
(§2.3: PCIe-5 is 64 GB/s while NVLink runs 300-900 GB/s depending on
GPU generation).  This sweep re-runs the long-prompt experiment across
link generations: the AQUA speedup tracks the bandwidth ratio, so it
persists — and grows — on newer hardware.
"""

from benchmarks._util import emit, run_once
from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.hardware.specs import (
    A100_80G,
    H100_80G,
    NVLINK3_P2P,
    NVLINK4_P2P,
    PCIE_GEN4_X16,
    PCIE_GEN5_X16,
)
from repro.models import OPT_30B, SD_15
from repro.serving import BatchEngine, FlexGenEngine
from repro.sim import Environment
from repro.workloads import long_prompt_requests
from repro.workloads.arrivals import submit_all

DURATION = 60.0

GENERATIONS = {
    "A100 + NVLink3 / PCIe4": (A100_80G, NVLINK3_P2P, PCIE_GEN4_X16),
    "A100 + NVLink3 / PCIe5": (A100_80G, NVLINK3_P2P, PCIE_GEN5_X16),
    "H100 + NVLink4 / PCIe5": (H100_80G, NVLINK4_P2P, PCIE_GEN5_X16),
}


def _tokens(gpu_spec, gpu_link, pcie_link, paired: bool) -> int:
    env = Environment()
    server = Server(
        env, n_gpus=2, gpu_spec=gpu_spec, gpu_link=gpu_link, pcie_link=pcie_link
    )
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    engine = FlexGenEngine(
        server.gpus[0], server, OPT_30B, aqua_lib=lib, workspace_tokens=8000
    )
    if paired:
        producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        producer = BatchEngine(server.gpus[1], server, SD_15, aqua_lib=producer_lib)
        producer.start()
        coord.pair(lib.name, producer_lib.name)
    engine.start()
    env.run(until=1.0)
    submit_all(env, engine, long_prompt_requests(start=1.0))
    env.run(until=1.0 + DURATION)
    return engine.metrics.tokens_generated


def test_sensitivity_to_interconnect_generation(benchmark):
    def run():
        rows = {}
        for label, (gpu, nvlink, pcie) in GENERATIONS.items():
            dram = _tokens(gpu, nvlink, pcie, paired=False)
            aqua = _tokens(gpu, nvlink, pcie, paired=True)
            rows[label] = {"dram": dram, "aqua": aqua, "speedup": aqua / dram}
        return rows

    rows = run_once(benchmark, run)
    emit(
        format_table(
            ["generation", "dram_tokens", "aqua_tokens", "speedup"],
            [[k, v["dram"], v["aqua"], v["speedup"]] for k, v in rows.items()],
            title="AQUA speedup across interconnect generations",
        )
    )
    a100 = rows["A100 + NVLink3 / PCIe4"]
    pcie5 = rows["A100 + NVLink3 / PCIe5"]
    h100 = rows["H100 + NVLink4 / PCIe5"]
    # AQUA wins on every generation...
    for v in rows.values():
        assert v["speedup"] > 2
    # ...a faster PCIe shrinks the gap (stronger DRAM baseline)...
    assert pcie5["speedup"] < a100["speedup"]
    # ...and H100's faster NVLink + HBM pushes absolute AQUA throughput up.
    assert h100["aqua"] > a100["aqua"]
