"""Figure 11: what donating memory costs the producer.

Paper: sorted producer RCTs with AQUA are very close to the baseline;
a small overhead appears in the low-traffic phase (NVLink I/O shares
the GPU), and during the burst AQUA briefly pauses to reclaim.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table
from repro.serving.metrics import percentile


def test_fig11_producer_overhead(benchmark):
    result = run_once(benchmark, lambda: F.fig11_producer_overhead(end=160.0))
    base, aqua = result["baseline"], result["aqua"]
    rows = []
    for label, rcts in (("baseline", base), ("aqua-producer", aqua)):
        rows.append(
            [
                label,
                len(rcts),
                percentile(rcts, 50),
                percentile(rcts, 95),
                max(rcts),
            ]
        )
    emit(
        format_table(
            ["system", "completed", "rct_p50_s", "rct_p95_s", "rct_max_s"],
            rows,
            title="Figure 11 (paper: donation overhead is small)",
        )
    )
    assert len(aqua) >= 0.95 * len(base)
    # Median and p95 within modest bounds of the baseline.
    assert percentile(aqua, 50) < 1.25 * percentile(base, 50)
    assert percentile(aqua, 95) < 1.4 * percentile(base, 95)
