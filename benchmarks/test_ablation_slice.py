"""Ablation: CFS slice length (tokens generated per time slice).

Design choice (§5): the slice length trades responsiveness against
context-switching overhead.  Short slices switch constantly (great
TTFT, poor RCT); long slices amortize switches but converge back to
batch-like unfairness.  The paper uses 5 tokens per slice (Figure 6).
"""

from benchmarks._util import emit, run_once
from repro.experiments.harness import build_consumer_rig, drain
from repro.experiments.report import format_table, summarize_requests
from repro.models import KANDINSKY
from repro.workloads import code_summary_requests
from repro.workloads.arrivals import submit_all


def _run(slice_tokens: int) -> dict:
    rig = build_consumer_rig(
        "cfs",
        "CodeLlama-34B",
        producer_model=KANDINSKY,
        use_aqua=True,
        consumer_kwargs={"slice_tokens": slice_tokens},
    ).start()
    rig.warm_up(1.0)
    requests = code_summary_requests(rate=5.0, count=40, seed=0, start=1.0)
    submit_all(rig.env, rig.consumer_engine, requests)
    drain(rig.env, requests, timeout=900)
    s = summarize_requests(requests, f"slice={slice_tokens}")
    s["switch_time"] = rig.consumer_engine.context_switch_time
    return s


def test_ablation_slice_length(benchmark):
    slices = (1, 5, 20, 80)
    results = run_once(benchmark, lambda: {k: _run(k) for k in slices})
    emit(
        format_table(
            ["slice_tokens", "ttft_p95_s", "rct_mean_s", "switch_time_s"],
            [
                [k, s["ttft_p95"], s["rct_mean"], s["switch_time"]]
                for k, s in results.items()
            ],
            title="Ablation: CFS slice length (paper uses 5)",
        )
    )
    # Short slices switch far more.
    assert results[1]["switch_time"] > results[20]["switch_time"]
    # Very long slices degrade responsiveness towards batching.
    assert results[80]["ttft_p95"] > results[5]["ttft_p95"]
