"""Ablation: paged-attention block size (tokens per KV block).

vLLM defaults to 16-token blocks.  Smaller blocks waste less memory to
internal fragmentation (each sequence wastes half a block on average)
but fragment the KV into more pieces — which is precisely what makes
naive offload copies slow (§5).  Larger blocks do the opposite.  This
ablation measures both effects: admitted concurrency under a burst, and
the scatter piece count AQUA's gather kernel has to coalesce.
"""

from benchmarks._util import emit, run_once
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.models import CODELLAMA_34B
from repro.serving import Request, VLLMEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def _run(block_tokens: int) -> dict:
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(
        server.gpus[0], server, CODELLAMA_34B, block_tokens=block_tokens
    )
    engine.start()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=700, max_new_tokens=1500)
        for _ in range(40)
    ]
    submit_all(env, engine, requests)
    peak = [0]

    def watch(env):
        while True:
            peak[0] = max(peak[0], len(engine.running))
            yield env.timeout(0.25)

    env.process(watch(env))
    env.run(until=60)
    # Scatter granularity of one mid-size sequence's KV at this block size.
    pieces = 2 * CODELLAMA_34B.n_layers * engine.kv.blocks_for(1500)
    return {
        "peak_batch": peak[0],
        "capacity_tokens": engine.allocator.n_blocks * block_tokens,
        "pieces_per_ctx": pieces,
    }


def test_ablation_block_size(benchmark):
    sizes = (8, 16, 64, 256)
    results = run_once(benchmark, lambda: {b: _run(b) for b in sizes})
    emit(
        format_table(
            ["block_tokens", "peak_batch", "capacity_tokens", "pieces_per_ctx"],
            [
                [b, r["peak_batch"], r["capacity_tokens"], r["pieces_per_ctx"]]
                for b, r in results.items()
            ],
            title="Paged-attention block size: fragmentation vs scatter",
        )
    )
    # Small blocks scatter a context across many more pieces...
    assert results[8]["pieces_per_ctx"] > 8 * results[256]["pieces_per_ctx"]
    # ...while concurrency is roughly flat across reasonable sizes (the
    # fragmentation waste is second-order at these sequence lengths).
    assert results[8]["peak_batch"] >= results[256]["peak_batch"]
    # Region capacity in tokens is block-size independent (same bytes).
    caps = [r["capacity_tokens"] for r in results.values()]
    assert max(caps) < 1.05 * min(caps)
