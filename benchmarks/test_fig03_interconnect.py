"""Figure 3: interconnect microbenchmarks.

3a: NVLink effective bandwidth is tiny for small buffers and reaches
~100 GB/s only at 2 MB, saturating near 250 GB/s (A100 pair).
3b: serving NVLink offloads costs the producer <5% throughput.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table
from repro.hardware.specs import GB, MB, NVLINK3_P2P


def test_fig03a_bandwidth_vs_size(benchmark):
    result = run_once(benchmark, F.fig03a_interconnect_bandwidth)
    emit(
        format_table(
            ["size_bytes", "NVLink_GB/s", "PCIe_GB/s"],
            [
                [r["size_bytes"], r["nvlink_gbps"], r["pcie_gbps"]]
                for r in result["rows"]
            ],
            title="Figure 3a (paper: ~100 GB/s at 2 MB, 250 GB/s peak)",
        )
    )
    at_2mb = NVLINK3_P2P.effective_bandwidth(2 * MB)
    assert 80 * GB < at_2mb < 130 * GB
    assert NVLINK3_P2P.effective_bandwidth(1 * GB) > 0.9 * 250 * GB


def test_fig03b_sharing_impact(benchmark):
    result = run_once(benchmark, lambda: F.fig03b_sharing_impact(duration=120.0))
    emit(
        format_table(
            ["isolated/s", "shared/s", "impact"],
            [
                [
                    result["isolated_throughput"],
                    result["shared_throughput"],
                    f"{result['impact_fraction']:.1%}",
                ]
            ],
            title="Figure 3b (paper: <5% producer impact)",
        )
    )
    assert result["impact_fraction"] < 0.08
