"""Figure 13: long-term responsiveness of a 25-user, 4-turn chatbot.

Paper: the workload has a saw-tooth shape (turns synchronize); without
AQUA a few users repeatedly hit unresponsiveness (vLLM's TTFT tail);
CFS-without-AQUA raises RCT ~1.5x, AQUA+CFS keeps the worst-case RCT
within ~20% while matching vLLM for late-arriving requests.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig13_chatbot(benchmark):
    result = run_once(benchmark, lambda: F.fig13_chatbot(n_users=25, turns=4))
    rows = []
    for label, data in result.items():
        s = data["summary"]
        rows.append(
            [
                label,
                data["turns_completed"],
                s["ttft_mean"],
                s["ttft_max"],
                s["rct_mean"],
                s["rct_max"],
            ]
        )
    emit(
        format_table(
            ["system", "turns", "ttft_mean_s", "ttft_max_s", "rct_mean_s", "rct_max_s"],
            rows,
            title="Figure 13 (paper: CFS ends repeated unresponsiveness)",
        )
    )
    vllm = result["vllm"]["summary"]
    cfs = result["cfs-dram"]["summary"]
    aqua = result["aqua"]["summary"]
    # Every system finishes all 100 turns.
    assert all(d["turns_completed"] == 100 for d in result.values())
    # Fair scheduling removes the repeated-unresponsiveness tail.
    assert aqua["ttft_max"] < vllm["ttft_max"] / 2
    assert cfs["ttft_max"] < vllm["ttft_max"] / 2
    # AQUA's mean RCT stays at or below the DRAM CFS variant.
    assert aqua["rct_mean"] <= cfs["rct_mean"]
    # The saw-tooth: completions cluster into turn waves.
    times = [t for t, _ in result["aqua"]["rct_by_completion"]]
    assert times == sorted(times)
