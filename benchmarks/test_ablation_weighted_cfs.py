"""Extension: weighted fair scheduling for differentiated service classes.

AQUA's CFS borrows Linux's completely fair scheduler; Linux CFS also
supports weights (nice levels).  This benchmark shows the natural
extension: two tenant classes sharing one GPU, with the premium class
given 4x the scheduling weight — it receives ~4x the tokens/s under
contention while total throughput stays the same.
"""

from benchmarks._util import emit, run_once
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.models import CODELLAMA_34B
from repro.serving import Request, WeightedCFSEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all

WINDOW = 40.0


def _run(weight_ratio: float) -> dict:
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = WeightedCFSEngine(server.gpus[0], server, CODELLAMA_34B, slice_tokens=5)
    engine.start()
    classes = {}
    for label, weight in (("standard", 1.0), ("premium", weight_ratio)):
        reqs = [
            Request(
                arrival_time=0.0,
                prompt_tokens=3000,
                max_new_tokens=2000,
                weight=weight,
            )
            for _ in range(8)
        ]
        submit_all(env, engine, reqs)
        classes[label] = reqs
    env.run(until=WINDOW)
    return {
        label: sum(r.generated_tokens for r in reqs)
        for label, reqs in classes.items()
    }


def test_weighted_cfs_service_differentiation(benchmark):
    results = run_once(
        benchmark, lambda: {ratio: _run(ratio) for ratio in (1.0, 2.0, 4.0)}
    )
    rows = []
    for ratio, tokens in results.items():
        measured = tokens["premium"] / max(1, tokens["standard"])
        rows.append([f"{ratio:g}x", tokens["standard"], tokens["premium"], measured])
    emit(
        format_table(
            ["weight", "standard_tokens", "premium_tokens", "measured_ratio"],
            rows,
            title=f"Weighted CFS service split over {WINDOW:.0f}s of contention",
        )
    )
    even = results[1.0]
    skewed = results[4.0]
    # Equal weights -> equal service.
    assert abs(even["premium"] - even["standard"]) <= 0.3 * even["standard"]
    # 4x weight -> clearly more service for the premium class...
    assert skewed["premium"] > 2 * skewed["standard"]
    # ...without tanking aggregate throughput (>= 70% of the even split).
    assert sum(skewed.values()) > 0.7 * sum(even.values())
