"""Extension of §6.1: the 16-model cluster run *concurrently*.

The paper evaluates its cluster one server at a time; the simulation
runs all eight servers together, with one coordinator, and checks that
the per-pair results match the sequential figures: long-prompt
consumers keep their NVLink speedup even while every other tenant in
the cluster is live.
"""

from benchmarks._util import emit, run_once
from repro.experiments.cluster_run import (
    ClusterExperiment,
    balanced_tenants,
    llm_heavy_tenants,
)
from repro.experiments.report import format_table

DURATION = 60.0


def _run(tenants, use_aqua=True):
    exp = ClusterExperiment(n_servers=8, gpus_per_server=2, use_aqua=use_aqua)
    return exp.run(tenants, duration=DURATION)


def test_balanced_cluster_concurrent(benchmark):
    result = run_once(
        benchmark,
        lambda: {
            "aqua": _run(balanced_tenants(), use_aqua=True),
            "dram": _run(balanced_tenants(), use_aqua=False),
        },
    )
    aqua, dram = result["aqua"]["results"], result["dram"]["results"]
    rows = []
    for name in sorted(aqua):
        r_a, r_d = aqua[name], dram[name]
        rows.append([name, r_a.role, r_a.tokens, r_d.tokens, r_a.completed])
    emit(
        format_table(
            ["tenant", "role", "aqua_tokens", "dram_tokens", "aqua_done"],
            rows,
            title=f"Balanced 16-model cluster, {DURATION:.0f}s, all tenants live",
        )
    )
    # Long-prompt consumers keep their NVLink speedup amid full load.
    for name in ("opt-0", "opt-1"):
        assert aqua[name].tokens > 3 * dram[name].tokens
    # Producers are unharmed by donating.
    for name, r in aqua.items():
        if r.role == "producer":
            assert r.completed >= 0.9 * dram[name].completed


def test_llm_heavy_cluster_concurrent(benchmark):
    result = run_once(benchmark, lambda: _run(llm_heavy_tenants(), use_aqua=True))
    results = result["results"]
    rows = [
        [name, r.role, r.tokens, r.completed]
        for name, r in sorted(results.items())
    ]
    emit(
        format_table(
            ["tenant", "role", "tokens", "done"],
            rows,
            title="LLM-heavy 16-model cluster (elastic LLM producers)",
        )
    )
    # Every long-prompt consumer reached NVLink-class throughput even
    # though its producer is an *LLM* donating elastically.
    opt_tokens = [r.tokens for name, r in results.items() if name.startswith("opt")]
    assert len(opt_tokens) == 4
    for tokens in opt_tokens:
        assert tokens > 400  # DRAM-only manages ~120 in this window
    # Elastic producers kept serving their own ShareGPT clients.
    for name, r in results.items():
        if name.startswith("idle"):
            assert r.completed > 0
