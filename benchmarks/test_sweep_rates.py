"""Extension: scheduler trade-offs across the request-rate axis.

The paper samples 2 and 5 req/s (Figure 9); this sweep fills in the
curve.  Expected shape: at light load all three schedulers match; as
load grows, vLLM's TTFT tail explodes while CFS stays bounded, and the
DRAM-paged CFS's RCT penalty keeps growing where AQUA's stays small.
"""

from benchmarks._util import emit, run_once
from repro.experiments.report import format_table
from repro.experiments.sweep import sweep_request_rate, sweep_rows


def test_sweep_request_rates(benchmark):
    points = run_once(
        benchmark, lambda: sweep_request_rate(rates=(1.0, 2.0, 4.0, 6.0), count=40)
    )
    emit(
        format_table(
            [
                "rate",
                "vllm_ttft_p95",
                "cfs_ttft_p95",
                "aqua_ttft_p95",
                "cfs_rct_penalty",
                "aqua_rct_penalty",
            ],
            sweep_rows(points),
            title="Scheduler trade-offs vs request rate (CodeLlama-34B)",
        )
    )
    light, heavy = points[0], points[-1]
    # At light load, fairness is ~free: penalties near 1.
    assert light.rct_penalty("aqua") < 1.2
    # Under load the TTFT win materializes...
    assert heavy.ttft_gain("aqua") > 1.3
    # ...and AQUA's RCT penalty stays below the DRAM variant's at every rate.
    for p in points:
        assert p.rct_penalty("aqua") <= p.rct_penalty("cfs-dram") + 0.05
    # The DRAM penalty grows with load (more context traffic to page).
    assert heavy.rct_penalty("cfs-dram") > light.rct_penalty("cfs-dram")
