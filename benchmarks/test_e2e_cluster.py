"""§6.1 end-to-end: 16 models on a cluster of eight 2-GPU servers.

Paper: AQUA-PLACER pairs every producer with a consumer in both the
*balanced* (image/audio/LLM thirds) and *LLM-heavy* splits; then each
server pair runs its workload with the consumer offloading over NVLink.
The paper evaluates servers independently and sequentially, which is
what this benchmark does for the OPT-30B pairs it placed.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.harness import build_consumer_rig
from repro.experiments.report import format_table
from repro.models import AUDIOGEN, LLAMA2_13B, SD_15
from repro.workloads import long_prompt_requests
from repro.workloads.arrivals import submit_all


def test_e2e_cluster_placement(benchmark):
    result = run_once(benchmark, F.e2e_cluster_placement)
    rows = []
    for split in ("balanced", "llm_heavy"):
        data = result[split]
        rows.append(
            [split, len(data["pairs"]), len(data["unmatched"]), data["solve_seconds"]]
        )
    emit(
        format_table(
            ["split", "pairs", "unmatched", "solve_s"],
            rows,
            title="§6.1: cluster placement (paper: every producer paired)",
        )
    )
    assert result["balanced"]["unmatched"] == []
    assert result["llm_heavy"]["unmatched"] == []


def test_e2e_placed_pairs_deliver_speedup(benchmark):
    run_once(benchmark, _run_placed_pairs)


def _run_placed_pairs():
    """Run the placed OPT-30B pairs: balanced (SD / AudioGen producers)
    and LLM-heavy (Llama producer) against the FlexGen baseline."""
    duration = 60.0

    def tokens_with(producer):
        rig = build_consumer_rig(
            "flexgen", "OPT-30B", producer_model=producer, use_aqua=producer is not None
        ).start()
        if producer is not None:
            rig.warm_up(1.0)
        submit_all(rig.env, rig.consumer_engine, long_prompt_requests())
        rig.env.run(until=rig.env.now + duration)
        return rig.consumer_engine.metrics.tokens_generated

    baseline = tokens_with(None)
    rows = [["flexgen-dram", baseline, 1.0]]
    for label, producer in (
        ("balanced: +SD", SD_15),
        ("balanced: +AudioGen", AUDIOGEN),
        ("llm-heavy: +Llama", LLAMA2_13B),
    ):
        tokens = tokens_with(producer)
        rows.append([label, tokens, tokens / baseline])
        assert tokens / baseline > 3, label
    emit(
        format_table(
            ["pairing", "tokens", "speedup"],
            rows,
            title="§6.1: placed pairs, long-prompt throughput",
        )
    )
