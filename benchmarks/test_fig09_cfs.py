"""Figure 9: CFS responsiveness (CodeLlama-34B + Kandinsky producer).

Paper: CFS improves TTFT ~4x over vLLM's batcher at 2 and 5 req/s;
without AQUA the RCT doubles, with AQUA most of it is recovered.
"""

from benchmarks._util import emit, run_once
from repro.experiments import figures as F
from repro.experiments.report import format_table


def test_fig09_cfs(benchmark):
    result = run_once(benchmark, lambda: F.fig09_cfs(rates=(2.0, 5.0), count=50))
    for rate, systems in result.items():
        rows = []
        for label, data in systems.items():
            s = data["summary"]
            rows.append(
                [label, s["ttft_mean"], s["ttft_p95"], s["rct_mean"], s["rct_p95"]]
            )
        emit(
            format_table(
                ["system", "ttft_mean_s", "ttft_p95_s", "rct_mean_s", "rct_p95_s"],
                rows,
                title=f"Figure 9 @ {rate} req/s (paper: CFS ~4x TTFT)",
            )
        )
    low = result[2.0]
    # The TTFT win is largest at the lower rate (fewer batch slots churn).
    assert low["cfs-dram"]["summary"]["ttft_p95"] < low["vllm"]["summary"]["ttft_p95"] / 2
    assert low["aqua"]["summary"]["ttft_p95"] < low["vllm"]["summary"]["ttft_p95"] / 2
    for rate in (2.0, 5.0):
        systems = result[rate]
        assert (
            systems["aqua"]["summary"]["rct_mean"]
            < systems["cfs-dram"]["summary"]["rct_mean"]
        )
