"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures on the
simulated testbed, prints the rows/series the paper reports (run pytest
with ``-s`` to see them), and asserts the paper's qualitative claim so
a regression in the reproduction fails loudly.
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print benchmark output so it survives pytest's capture with -s."""
    sys.stdout.write(f"\n{text}\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
